#include "core/registry.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/serialization.hpp"
#include "util/serialize.hpp"

namespace p2auth::core {

void UserRegistry::add(const std::string& name, EnrolledUser user) {
  if (name.empty()) {
    throw std::invalid_argument("UserRegistry::add: empty name");
  }
  const auto [it, inserted] = users_.emplace(name, std::move(user));
  (void)it;
  if (!inserted) {
    throw std::invalid_argument("UserRegistry::add: duplicate name '" +
                                name + "'");
  }
}

bool UserRegistry::remove(const std::string& name) {
  return users_.erase(name) > 0;
}

const EnrolledUser* UserRegistry::find(const std::string& name) const {
  const auto it = users_.find(name);
  return it == users_.end() ? nullptr : &it->second;
}

std::vector<std::string> UserRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(users_.size());
  for (const auto& [name, user] : users_) out.push_back(name);
  return out;
}

AuthResult UserRegistry::verify(const std::string& name,
                                const Observation& observation,
                                const AuthOptions& options) const {
  const EnrolledUser* user = find(name);
  if (user == nullptr) {
    throw std::invalid_argument("UserRegistry::verify: unknown user '" +
                                name + "'");
  }
  return authenticate(*user, observation, options);
}

bool detail::score_order(const std::pair<std::string, double>& a,
                         const std::pair<std::string, double>& b) noexcept {
  const bool a_nan = std::isnan(a.second);
  const bool b_nan = std::isnan(b.second);
  if (a_nan != b_nan) return b_nan;  // real scores before NaN
  if (a_nan) return false;           // all NaNs are equivalent
  return a.second > b.second;
}

UserRegistry::IdentifyResult UserRegistry::identify(
    const Observation& observation, const AuthOptions& options) const {
  if (users_.empty()) {
    throw std::logic_error("UserRegistry::identify: empty registry");
  }
  const PreprocessedEntry pre =
      preprocess_entry(observation, options.preprocess);
  return identify_preprocessed(pre, options);
}

UserRegistry::IdentifyResult UserRegistry::identify_preprocessed(
    const PreprocessedEntry& pre, const AuthOptions& options) const {
  if (users_.empty()) {
    throw std::logic_error("UserRegistry::identify: empty registry");
  }
  IdentifyResult result;
  result.detected_case = pre.detected_case;
  if (pre.detected_case != DetectedCase::kOneHanded) {
    return result;  // identification needs the full-waveform evidence
  }
  // A degenerate entry can carry the one-handed label with no calibrated
  // keystrokes; front() on the empty index vector is UB, so such entries
  // are rejected instead of scored.
  if (pre.calibrated_indices.empty()) {
    result.detected_case = DetectedCase::kRejected;
    return result;
  }
  std::size_t first = pre.calibrated_indices.front();
  const std::size_t n_keystrokes =
      std::min(pre.keystroke_present.size(), pre.calibrated_indices.size());
  for (std::size_t i = 0; i < n_keystrokes; ++i) {
    if (pre.keystroke_present[i]) {
      first = pre.calibrated_indices[i];
      break;
    }
  }
  const std::vector<Series> full = extract_full_waveform(
      pre.filtered, first, pre.rate_hz, options.segmentation);
  for (const auto& [name, user] : users_) {
    if (!user.full_model.has_value() || !user.full_model->trained()) {
      continue;
    }
    result.scores.emplace_back(name, user.full_model->decision(full));
  }
  std::sort(result.scores.begin(), result.scores.end(), detail::score_order);
  // NaN >= 0.0 is false, so an all-NaN score list never names an
  // identity.
  if (!result.scores.empty() && result.scores.front().second >= 0.0) {
    result.identity = result.scores.front().first;
  }
  return result;
}

void UserRegistry::save(std::ostream& os) const {
  util::write_string(os, "p2auth-registry.v1", "");
  util::write_u64(os, "count", users_.size());
  for (const auto& [name, user] : users_) {
    util::write_string(os, "name", name);
    save_enrolled_user(user, os);
  }
}

UserRegistry UserRegistry::load(std::istream& is) {
  (void)util::read_string(is, "p2auth-registry.v1");
  const std::uint64_t count = util::read_u64(is, "count");
  UserRegistry registry;
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::string name = util::read_string(is, "name");
    if (name.empty()) {
      throw util::SerializeError(util::SerializeErrc::kBadValue,
                                 "UserRegistry::load: empty user name");
    }
    if (registry.find(name) != nullptr) {
      throw util::SerializeError(
          util::SerializeErrc::kDuplicateName,
          "UserRegistry::load: duplicate user name '" + name + "'");
    }
    registry.add(name, load_enrolled_user(is));
  }
  return registry;
}

}  // namespace p2auth::core
