#include "core/registry.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/serialization.hpp"
#include "util/serialize.hpp"

namespace p2auth::core {

void UserRegistry::add(const std::string& name, EnrolledUser user) {
  if (name.empty()) {
    throw std::invalid_argument("UserRegistry::add: empty name");
  }
  const auto [it, inserted] = users_.emplace(name, std::move(user));
  (void)it;
  if (!inserted) {
    throw std::invalid_argument("UserRegistry::add: duplicate name '" +
                                name + "'");
  }
}

bool UserRegistry::remove(const std::string& name) {
  return users_.erase(name) > 0;
}

const EnrolledUser* UserRegistry::find(const std::string& name) const {
  const auto it = users_.find(name);
  return it == users_.end() ? nullptr : &it->second;
}

std::vector<std::string> UserRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(users_.size());
  for (const auto& [name, user] : users_) out.push_back(name);
  return out;
}

AuthResult UserRegistry::verify(const std::string& name,
                                const Observation& observation,
                                const AuthOptions& options) const {
  const EnrolledUser* user = find(name);
  if (user == nullptr) {
    throw std::invalid_argument("UserRegistry::verify: unknown user '" +
                                name + "'");
  }
  return authenticate(*user, observation, options);
}

UserRegistry::IdentifyResult UserRegistry::identify(
    const Observation& observation, const AuthOptions& options) const {
  if (users_.empty()) {
    throw std::logic_error("UserRegistry::identify: empty registry");
  }
  IdentifyResult result;
  const PreprocessedEntry pre =
      preprocess_entry(observation, options.preprocess);
  result.detected_case = pre.detected_case;
  if (pre.detected_case != DetectedCase::kOneHanded) {
    return result;  // identification needs the full-waveform evidence
  }
  std::size_t first = pre.calibrated_indices.front();
  for (std::size_t i = 0; i < pre.keystroke_present.size(); ++i) {
    if (pre.keystroke_present[i]) {
      first = pre.calibrated_indices[i];
      break;
    }
  }
  const std::vector<Series> full = extract_full_waveform(
      pre.filtered, first, pre.rate_hz, options.segmentation);
  for (const auto& [name, user] : users_) {
    if (!user.full_model.has_value() || !user.full_model->trained()) {
      continue;
    }
    result.scores.emplace_back(name, user.full_model->decision(full));
  }
  std::sort(result.scores.begin(), result.scores.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  if (!result.scores.empty() && result.scores.front().second >= 0.0) {
    result.identity = result.scores.front().first;
  }
  return result;
}

void UserRegistry::save(std::ostream& os) const {
  util::write_string(os, "p2auth-registry.v1", "");
  util::write_u64(os, "count", users_.size());
  for (const auto& [name, user] : users_) {
    util::write_string(os, "name", name);
    save_enrolled_user(user, os);
  }
}

UserRegistry UserRegistry::load(std::istream& is) {
  (void)util::read_string(is, "p2auth-registry.v1");
  const std::uint64_t count = util::read_u64(is, "count");
  UserRegistry registry;
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::string name = util::read_string(is, "name");
    registry.add(name, load_enrolled_user(is));
  }
  return registry;
}

}  // namespace p2auth::core
