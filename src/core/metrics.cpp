#include "core/metrics.hpp"

#include <cmath>

namespace p2auth::core {

double AuthMetrics::far() const noexcept {
  OutcomeTally pooled = random_attack;
  pooled.merge(emulating_attack);
  return pooled.acceptance_rate();
}

void AuthMetrics::merge(const AuthMetrics& other) noexcept {
  legitimate.merge(other.legitimate);
  random_attack.merge(other.random_attack);
  emulating_attack.merge(other.emulating_attack);
}

double mean(const std::vector<double>& values) noexcept {
  if (values.empty()) return 0.0;
  double s = 0.0;
  for (const double v : values) s += v;
  return s / static_cast<double>(values.size());
}

double stddev(const std::vector<double>& values) noexcept {
  if (values.size() < 2) return 0.0;
  const double m = mean(values);
  double s = 0.0;
  for (const double v : values) s += (v - m) * (v - m);
  return std::sqrt(s / static_cast<double>(values.size()));
}

}  // namespace p2auth::core
