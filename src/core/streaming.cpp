#include "core/streaming.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>

#include "backend/policy.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace p2auth::core {

namespace {

double steady_seconds() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch())
      .count();
}

}  // namespace

StreamingAuthenticator::StreamingAuthenticator(const EnrolledUser& user,
                                               double rate_hz,
                                               std::size_t channels,
                                               StreamingOptions options)
    : user_(user),
      rate_hz_(rate_hz),
      channels_(channels),
      options_(std::move(options)) {
  if (rate_hz <= 0.0) {
    throw std::invalid_argument(
        "StreamingAuthenticator: rate must be positive");
  }
  if (channels == 0) {
    throw std::invalid_argument("StreamingAuthenticator: need channels");
  }
  if (options_.tail_s < 0.0 || options_.timeout_s <= 0.0) {
    throw std::invalid_argument("StreamingAuthenticator: bad time limits");
  }
  if (options_.lockout_threshold > 0 &&
      (options_.lockout_base_s <= 0.0 ||
       options_.lockout_max_s < options_.lockout_base_s)) {
    throw std::invalid_argument("StreamingAuthenticator: bad lockout");
  }
  max_buffer_samples_ =
      options_.max_buffer_samples > 0
          ? options_.max_buffer_samples
          : static_cast<std::size_t>(2.0 * options_.timeout_s * rate_hz_);
  trace_.rate_hz = rate_hz;
  trace_.channels.assign(channels, {});
  stats_.backend = backend::kernels().name;
  if (options_.monitor_drift) {
    drift_.emplace(user_.score_baseline, options_.drift);
  }
}

double StreamingAuthenticator::now() const {
  return options_.clock ? options_.clock() : steady_seconds();
}

bool StreamingAuthenticator::locked_out() const {
  return locked_ && now() < locked_until_;
}

double StreamingAuthenticator::lockout_remaining_s() const {
  if (!locked_) return 0.0;
  return std::max(0.0, locked_until_ - now());
}

void StreamingAuthenticator::push_sample(std::span<const double> sample) {
  if (sample.size() != channels_) {
    throw std::invalid_argument(
        "StreamingAuthenticator::push_sample: channel count mismatch");
  }
  ++stats_.samples;
  if (!attempt_open_) {
    attempt_open_ = true;
    attempt_start_ = now();
  }
  if (trace_.length() >= max_buffer_samples_) {
    // Bounded buffer: drop the sample, flag the attempt.  poll() turns
    // the flag into a loud kBufferOverflow rejection.
    overflowed_ = true;
    ++stats_.overflow_dropped;
    obs::add_counter("streaming.overflow_dropped");
    return;
  }
  for (std::size_t c = 0; c < channels_; ++c) {
    double v = sample[c];
    if (!std::isfinite(v)) {
      // Ingest sanitisation: a non-finite reading never enters the
      // buffer.  Previous-sample hold keeps the stream clock aligned.
      v = trace_.channels[c].empty() ? 0.0 : trace_.channels[c].back();
      ++stats_.nonfinite_values;
      obs::add_counter("streaming.nonfinite_values");
    }
    trace_.channels[c].push_back(v);
  }
}

void StreamingAuthenticator::push_keystroke(char digit,
                                            double recorded_time_s) {
  // Validate *before* mutating the attempt: a throw must leave the
  // half-typed entry exactly as it was (events and PIN in sync).
  if (!std::isfinite(recorded_time_s)) {
    throw std::invalid_argument(
        "StreamingAuthenticator::push_keystroke: non-finite timestamp");
  }
  std::string digits = entry_.pin.digits();
  digits.push_back(digit);
  keystroke::Pin pin(digits);  // throws on non-digit

  if (!attempt_open_) {
    attempt_open_ = true;
    attempt_start_ = now();
  }
  keystroke::KeystrokeEvent event;
  event.digit = digit;
  event.recorded_time_s = recorded_time_s;
  event.true_time_s = recorded_time_s;  // truth is unknown on-device
  entry_.events.push_back(event);
  entry_.pin = std::move(pin);
  ++stats_.keystrokes;
}

double StreamingAuthenticator::buffered_seconds() const noexcept {
  return static_cast<double>(trace_.length()) / rate_hz_;
}

void StreamingAuthenticator::reset() {
  for (auto& ch : trace_.channels) ch.clear();
  entry_ = keystroke::EntryRecord{};
  attempt_open_ = false;
  attempt_start_ = -1.0;
  overflowed_ = false;
}

AuthResult StreamingAuthenticator::make_reject(RejectReason reason) {
  AuthResult result;
  result.accepted = false;
  result.reason = reason;
  return result;
}

AuthResult StreamingAuthenticator::finish_attempt(AuthResult result) {
  ++stats_.attempts;
  obs::add_counter("streaming.attempts");
  // Streaming-only rejects (timeout/lockout/overflow) never reach
  // authenticate(), which audits its own decisions; record them here so
  // the flight recorder sees every decided attempt exactly once.
  switch (result.reason) {
    case RejectReason::kTimeout:
    case RejectReason::kBufferOverflow:
    case RejectReason::kLockedOut:
    case RejectReason::kIncomplete:
      audit_decision(user_.user_id, result);
      break;
    default:
      break;
  }
  if (drift_) {
    // Proxy labeling for deployment: an attempt that passed the PIN
    // factor and was scored by a waveform model is overwhelmingly likely
    // genuine (an attacker without the PIN never reaches the model).
    if (result.pin_ok && (result.model_path == ModelPath::kFullWaveform ||
                          result.model_path == ModelPath::kBoost)) {
      drift_->observe_genuine(result.waveform_score);
    }
    if (result.channels_assessed > 0) {
      drift_->observe_channels(result.channel_mask,
                               result.channels_assessed);
    }
    stats_.drift_alerts += drift_->poll_new_alerts().size();
  }
  if (result.accepted) {
    ++stats_.accepted;
    obs::add_counter("streaming.accepted");
    consecutive_rejects_ = 0;
    lockout_level_ = 0;
  } else {
    ++stats_.rejects_by_reason[result.reason];
    obs::add_counter("streaming.rejects");
    obs::add_counter(std::string("streaming.reject.") +
                     reject_reason_slug(result.reason));
    // Lockout state machine: genuine rejections count toward the
    // threshold; refusals issued *by* the lockout do not re-arm it.
    if (options_.lockout_threshold > 0 &&
        result.reason != RejectReason::kLockedOut) {
      if (++consecutive_rejects_ >= options_.lockout_threshold) {
        const double backoff = std::min(
            options_.lockout_max_s,
            options_.lockout_base_s *
                std::pow(2.0, static_cast<double>(lockout_level_)));
        locked_ = true;
        locked_until_ = now() + backoff;
        ++lockout_level_;
        consecutive_rejects_ = 0;
        ++stats_.lockouts;
        obs::add_counter("streaming.lockouts");
      }
    }
  }
  return result;
}

std::optional<AuthResult> StreamingAuthenticator::poll() {
  if (!attempt_active()) return std::nullopt;
  const obs::ScopedLatency latency("streaming.poll_us");
  obs::set_gauge("streaming.buffer_samples",
                 static_cast<double>(trace_.length()));

  // Lockout backoff: refuse the pending attempt outright.
  if (locked_out()) {
    obs::add_counter("streaming.dropped_samples", trace_.length());
    reset();
    obs::set_gauge("streaming.buffer_samples", 0.0);
    ++stats_.lockout_rejects;
    return finish_attempt(make_reject(RejectReason::kLockedOut));
  }

  // Buffer overflow: the attempt already lost samples; no sound decision
  // can be made from a truncated trace.
  if (overflowed_) {
    obs::add_counter("streaming.dropped_samples", trace_.length());
    reset();
    obs::set_gauge("streaming.buffer_samples", 0.0);
    return finish_attempt(make_reject(RejectReason::kBufferOverflow));
  }

  // Attempt age is the larger of stream time and monotonic-clock time
  // since the first push: a runaway stream trips the former, a stalled
  // stream (no samples arriving, so buffered_seconds() stops growing)
  // trips the latter.
  const double age =
      std::max(buffered_seconds(),
               attempt_open_ ? now() - attempt_start_ : 0.0);
  if (age > options_.timeout_s) {
    // Account for the dropped buffer before clearing it (the decide path
    // hands its samples to the pipeline; the timeout path just drops).
    obs::add_counter("streaming.dropped_samples", trace_.length());
    reset();
    obs::set_gauge("streaming.buffer_samples", 0.0);
    ++stats_.timeouts;
    obs::add_counter("streaming.timeouts");
    return finish_attempt(make_reject(RejectReason::kTimeout));
  }

  std::size_t expected = options_.expected_keystrokes;
  if (expected == 0) {
    expected = user_.pin.empty() ? 4 : user_.pin.length();
  }
  if (entry_.events.size() < expected) return std::nullopt;

  // Wait for the artifact tail after the final keystroke.
  const double last = entry_.events.back().recorded_time_s;
  if (buffered_seconds() < last + options_.tail_s) return std::nullopt;

  const obs::Span span("streaming.decide", "core");
  Observation observation{entry_, trace_};
  reset();
  obs::set_gauge("streaming.buffer_samples", 0.0);
  return finish_attempt(authenticate(user_, observation, options_.auth));
}

}  // namespace p2auth::core
