#include "core/streaming.hpp"

#include <stdexcept>
#include <string>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace p2auth::core {

StreamingAuthenticator::StreamingAuthenticator(const EnrolledUser& user,
                                               double rate_hz,
                                               std::size_t channels,
                                               StreamingOptions options)
    : user_(user),
      rate_hz_(rate_hz),
      channels_(channels),
      options_(options) {
  if (rate_hz <= 0.0) {
    throw std::invalid_argument(
        "StreamingAuthenticator: rate must be positive");
  }
  if (channels == 0) {
    throw std::invalid_argument("StreamingAuthenticator: need channels");
  }
  if (options_.tail_s < 0.0 || options_.timeout_s <= 0.0) {
    throw std::invalid_argument("StreamingAuthenticator: bad time limits");
  }
  trace_.rate_hz = rate_hz;
  trace_.channels.assign(channels, {});
}

void StreamingAuthenticator::push_sample(std::span<const double> sample) {
  if (sample.size() != channels_) {
    throw std::invalid_argument(
        "StreamingAuthenticator::push_sample: channel count mismatch");
  }
  for (std::size_t c = 0; c < channels_; ++c) {
    trace_.channels[c].push_back(sample[c]);
  }
  ++stats_.samples;
}

void StreamingAuthenticator::push_keystroke(char digit,
                                            double recorded_time_s) {
  keystroke::KeystrokeEvent event;
  event.digit = digit;  // validity checked by Pin construction below
  event.recorded_time_s = recorded_time_s;
  event.true_time_s = recorded_time_s;  // truth is unknown on-device
  entry_.events.push_back(event);
  std::string digits = entry_.pin.digits();
  digits.push_back(digit);
  entry_.pin = keystroke::Pin(digits);  // throws on non-digit
  ++stats_.keystrokes;
}

double StreamingAuthenticator::buffered_seconds() const noexcept {
  return static_cast<double>(trace_.length()) / rate_hz_;
}

void StreamingAuthenticator::reset() {
  for (auto& ch : trace_.channels) ch.clear();
  entry_ = keystroke::EntryRecord{};
}

AuthResult StreamingAuthenticator::finish_attempt(AuthResult result) {
  ++stats_.attempts;
  obs::add_counter("streaming.attempts");
  if (result.accepted) {
    ++stats_.accepted;
    obs::add_counter("streaming.accepted");
  } else {
    ++stats_.rejects_by_reason[result.reason];
    obs::add_counter("streaming.rejects");
  }
  return result;
}

std::optional<AuthResult> StreamingAuthenticator::poll() {
  if (trace_.length() == 0) return std::nullopt;
  const obs::ScopedLatency latency("streaming.poll_us");
  obs::set_gauge("streaming.buffer_samples",
                 static_cast<double>(trace_.length()));

  if (buffered_seconds() > options_.timeout_s) {
    reset();
    AuthResult timed_out;
    timed_out.accepted = false;
    timed_out.reason = "attempt timed out";
    ++stats_.timeouts;
    obs::add_counter("streaming.timeouts");
    return finish_attempt(std::move(timed_out));
  }

  std::size_t expected = options_.expected_keystrokes;
  if (expected == 0) {
    expected = user_.pin.empty() ? 4 : user_.pin.length();
  }
  if (entry_.events.size() < expected) return std::nullopt;

  // Wait for the artifact tail after the final keystroke.
  const double last = entry_.events.back().recorded_time_s;
  if (buffered_seconds() < last + options_.tail_s) return std::nullopt;

  const obs::Span span("streaming.decide", "core");
  Observation observation{entry_, trace_};
  reset();
  obs::set_gauge("streaming.buffer_samples", 0.0);
  return finish_attempt(authenticate(user_, observation, options_.auth));
}

}  // namespace p2auth::core
