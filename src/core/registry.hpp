// Multi-user registry: one device, several enrolled users.
//
// The paper evaluates verification (a claimed identity is checked), but a
// deployed device needs user management around it: add/remove/look-up of
// enrolled users, persistence of the whole registry, and — as a natural
// extension of the per-user models — 1-of-N *identification*: given an
// unclaimed entry, score it against every enrolled user's full-waveform
// model and accept the best-scoring user if their model accepts.
#pragma once

#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/authenticator.hpp"
#include "core/enrollment.hpp"

namespace p2auth::core {

class UserRegistry {
 public:
  UserRegistry() = default;

  // Registers an enrolled user under a device-unique name; a duplicate
  // name throws std::invalid_argument.
  void add(const std::string& name, EnrolledUser user);

  // Removes a user; returns false if the name is unknown.
  bool remove(const std::string& name);

  // Looks a user up; nullptr if unknown.
  const EnrolledUser* find(const std::string& name) const;

  std::vector<std::string> names() const;
  std::size_t size() const noexcept { return users_.size(); }
  bool empty() const noexcept { return users_.empty(); }

  // Verification: two-factor authentication of a *claimed* identity.
  // Unknown names throw std::invalid_argument.
  AuthResult verify(const std::string& name, const Observation& observation,
                    const AuthOptions& options = {}) const;

  struct IdentifyResult {
    // Best-scoring user whose model accepted; nullopt when nobody did.
    std::optional<std::string> identity;
    // Decision value per enrolled user (only users with a full-waveform
    // model participate), sorted best-first.
    std::vector<std::pair<std::string, double>> scores;
    DetectedCase detected_case = DetectedCase::kRejected;
  };

  // Identification (1-of-N): no claimed identity and no PIN check; the
  // entry must be one-handed (full-waveform evidence).  An empty registry
  // throws std::logic_error.
  IdentifyResult identify(const Observation& observation,
                          const AuthOptions& options = {}) const;

  // Scoring core of identify, split out so callers that already ran
  // preprocessing (and the regression tests for the degenerate-entry
  // guards) can drive it directly.  Entries whose preprocessing produced
  // no calibrated keystroke indices are rejected instead of dereferencing
  // an empty vector.
  IdentifyResult identify_preprocessed(const PreprocessedEntry& pre,
                                       const AuthOptions& options = {}) const;

  // Persistence of the whole registry.
  void save(std::ostream& os) const;
  static UserRegistry load(std::istream& is);

 private:
  std::map<std::string, EnrolledUser> users_;
};

namespace detail {

// Best-score-first ordering for IdentifyResult::scores.  A strict weak
// ordering even when decision values are NaN (a plain `a > b` comparator
// is not: NaN compares false against everything, which breaks
// transitivity-of-equivalence and lets std::sort scribble out of
// bounds).  NaN scores sort after every real score and compare
// equivalent to each other.  Exposed for the regression tests.
bool score_order(const std::pair<std::string, double>& a,
                 const std::pair<std::string, double>& b) noexcept;

}  // namespace detail

}  // namespace p2auth::core
