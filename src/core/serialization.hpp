// Persistence of enrolled users.
//
// An enrollment is expensive (the user types 9+ PINs) and its models must
// survive device restarts, so EnrolledUser serialises to a versioned text
// format.  Loading validates tags and shapes and throws
// std::runtime_error on any inconsistency — a corrupted model store must
// never silently authenticate.
#pragma once

#include <iosfwd>
#include <string>

#include "core/enrollment.hpp"

namespace p2auth::core {

// Streams a trained WaveformModel (MiniRocket + ridge + threshold).
void save_waveform_model(const WaveformModel& model, std::ostream& os);
WaveformModel load_waveform_model(std::istream& is);

// Streams a full enrolled user (PIN, flags, stats, all models).
void save_enrolled_user(const EnrolledUser& user, std::ostream& os);
EnrolledUser load_enrolled_user(std::istream& is);

// File convenience wrappers; throw std::runtime_error on I/O failure.
void save_enrolled_user_file(const EnrolledUser& user,
                             const std::string& path);
EnrolledUser load_enrolled_user_file(const std::string& path);

}  // namespace p2auth::core
