// Persistence of enrolled users (legacy text format).
//
// An enrollment is expensive (the user types 9+ PINs) and its models must
// survive device restarts, so EnrolledUser serialises to a versioned text
// format.  Loading validates tags and shapes and throws
// util::SerializeError on any inconsistency — a corrupted model store
// must never silently authenticate.
//
// The binary `P2MDL001` format in src/io/binary.hpp supersedes this text
// format for new stores (mmap-able, CRC-framed, orders of magnitude
// faster to load); the text loader here is retained for one release so
// models saved by older builds keep working, and tools/model_convert
// migrates between the two losslessly.
#pragma once

#include <iosfwd>
#include <string>

#include "core/enrollment.hpp"

namespace p2auth::core {

// Streams a trained WaveformModel (MiniRocket + ridge + threshold).
void save_waveform_model(const WaveformModel& model, std::ostream& os);
WaveformModel load_waveform_model(std::istream& is);

// Streams a full enrolled user (PIN, flags, stats, all models).
void save_enrolled_user(const EnrolledUser& user, std::ostream& os);
EnrolledUser load_enrolled_user(std::istream& is);

// File convenience wrappers; throw std::runtime_error on I/O failure.
void save_enrolled_user_file(const EnrolledUser& user,
                             const std::string& path);
EnrolledUser load_enrolled_user_file(const std::string& path);

}  // namespace p2auth::core
