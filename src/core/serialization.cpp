#include "core/serialization.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/serialize.hpp"

namespace p2auth::core {

void save_waveform_model(const WaveformModel& model, std::ostream& os) {
  if (!model.trained()) {
    throw std::logic_error("save_waveform_model: not trained");
  }
  util::write_string(os, "waveform-model.v1", "");
  model.rocket().save(os);
  model.ridge().save(os);
  util::write_double(os, "threshold", model.threshold());
}

WaveformModel load_waveform_model(std::istream& is) {
  (void)util::read_string(is, "waveform-model.v1");
  ml::MultiChannelMiniRocket rocket = ml::MultiChannelMiniRocket::load(is);
  linalg::RidgeClassifier ridge = linalg::RidgeClassifier::load(is);
  const double threshold = util::read_double(is, "threshold");
  try {
    return WaveformModel::from_parts(std::move(rocket), std::move(ridge),
                                     threshold);
  } catch (const std::invalid_argument& e) {
    // from_parts validates assembly invariants for programmatic callers;
    // when the parts came from a stream the failure is a corrupt store.
    throw util::SerializeError(util::SerializeErrc::kBadShape, e.what());
  }
}

void save_enrolled_user(const EnrolledUser& user, std::ostream& os) {
  util::write_string(os, "p2auth-enrolled-user.v1", "");
  util::write_string(os, "pin", user.pin.digits());
  util::write_bool(os, "privacy_boost", user.privacy_boost);
  util::write_u64(os, "stats.full_positives", user.stats.full_positives);
  util::write_u64(os, "stats.full_negatives", user.stats.full_negatives);
  util::write_u64(os, "stats.segment_positives",
                  user.stats.segment_positives);
  util::write_u64(os, "stats.segment_negatives",
                  user.stats.segment_negatives);
  util::write_u64(os, "stats.key_models", user.stats.key_models_trained);

  util::write_bool(os, "has_full_model", user.full_model.has_value());
  if (user.full_model.has_value()) save_waveform_model(*user.full_model, os);
  util::write_bool(os, "has_boost_model", user.boost_model.has_value());
  if (user.boost_model.has_value()) {
    save_waveform_model(*user.boost_model, os);
  }
  for (std::size_t k = 0; k < user.key_models.size(); ++k) {
    util::write_bool(os, "has_key_model", user.key_models[k].has_value());
    if (user.key_models[k].has_value()) {
      save_waveform_model(*user.key_models[k], os);
    }
  }
}

EnrolledUser load_enrolled_user(std::istream& is) {
  (void)util::read_string(is, "p2auth-enrolled-user.v1");
  EnrolledUser user;
  try {
    user.pin = keystroke::Pin(util::read_string(is, "pin"));
  } catch (const std::invalid_argument& e) {
    // A corrupted pin field (non-digit bytes) is a deserialization
    // failure, not a caller error.
    throw util::SerializeError(util::SerializeErrc::kBadValue, e.what());
  }
  user.privacy_boost = util::read_bool(is, "privacy_boost");
  user.stats.full_positives = util::read_u64(is, "stats.full_positives");
  user.stats.full_negatives = util::read_u64(is, "stats.full_negatives");
  user.stats.segment_positives =
      util::read_u64(is, "stats.segment_positives");
  user.stats.segment_negatives =
      util::read_u64(is, "stats.segment_negatives");
  user.stats.key_models_trained = util::read_u64(is, "stats.key_models");

  if (util::read_bool(is, "has_full_model")) {
    user.full_model = load_waveform_model(is);
  }
  if (util::read_bool(is, "has_boost_model")) {
    user.boost_model = load_waveform_model(is);
  }
  for (std::size_t k = 0; k < user.key_models.size(); ++k) {
    if (util::read_bool(is, "has_key_model")) {
      user.key_models[k] = load_waveform_model(is);
    }
  }
  if (user.privacy_boost && !user.boost_model.has_value()) {
    throw util::SerializeError(
        util::SerializeErrc::kBadShape,
        "load_enrolled_user: privacy boost set without a boost model");
  }
  return user;
}

void save_enrolled_user_file(const EnrolledUser& user,
                             const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw util::SerializeError(util::SerializeErrc::kIoError,
                               "save_enrolled_user_file: cannot open " + path);
  }
  save_enrolled_user(user, out);
  if (!out) {
    throw util::SerializeError(
        util::SerializeErrc::kIoError,
        "save_enrolled_user_file: write failed: " + path);
  }
}

EnrolledUser load_enrolled_user_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw util::SerializeError(util::SerializeErrc::kIoError,
                               "load_enrolled_user_file: cannot open " + path);
  }
  return load_enrolled_user(in);
}

}  // namespace p2auth::core
