#include "obs/obs.hpp"

#include <cmath>

#include "util/stopwatch.hpp"

namespace p2auth::obs {

std::int64_t now_us() noexcept {
  // Magic-static: the first caller pins the epoch, thread-safely.
  static const util::Stopwatch epoch;
  return static_cast<std::int64_t>(std::llround(epoch.seconds() * 1e6));
}

}  // namespace p2auth::obs
