#include "obs/prometheus.hpp"

#include <cctype>
#include <cmath>
#include <ostream>
#include <sstream>

namespace p2auth::obs {
namespace {

// Prometheus floats: integral values print without a decimal point,
// everything else with enough digits to round-trip; non-finite values
// use the exposition-format spellings.
void write_value(std::ostream& os, double value) {
  if (std::isnan(value)) {
    os << "NaN";
    return;
  }
  if (std::isinf(value)) {
    os << (value > 0 ? "+Inf" : "-Inf");
    return;
  }
  if (value == static_cast<double>(static_cast<std::int64_t>(value)) &&
      std::fabs(value) < 1e15) {
    os << static_cast<std::int64_t>(value);
    return;
  }
  std::ostringstream tmp;
  tmp.precision(17);
  tmp << value;
  os << tmp.str();
}

}  // namespace

std::string prometheus_name(std::string_view name) {
  std::string out = "p2auth_";
  if (!name.empty() &&
      std::isdigit(static_cast<unsigned char>(name.front()))) {
    out.push_back('_');
  }
  for (char c : name) {
    const bool legal = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       (c >= '0' && c <= '9') || c == '_';
    out.push_back(legal ? c : '_');
  }
  return out;
}

void write_prometheus_text(std::ostream& os,
                           const MetricsSnapshot& snapshot) {
  for (const auto& [name, value] : snapshot.counters) {
    const std::string mangled = prometheus_name(name) + "_total";
    os << "# TYPE " << mangled << " counter\n";
    os << mangled << " " << value << "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string mangled = prometheus_name(name);
    os << "# TYPE " << mangled << " gauge\n";
    os << mangled << " ";
    write_value(os, value);
    os << "\n";
  }
  for (const auto& [name, hist] : snapshot.histograms) {
    const std::string mangled = prometheus_name(name) + "_us";
    os << "# TYPE " << mangled << " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < kHistogramBoundsUs.size(); ++i) {
      cumulative += hist.buckets[i];
      os << mangled << "_bucket{le=\"";
      write_value(os, kHistogramBoundsUs[i]);
      os << "\"} " << cumulative << "\n";
    }
    cumulative += hist.buckets[kHistogramBoundsUs.size()];
    os << mangled << "_bucket{le=\"+Inf\"} " << cumulative << "\n";
    os << mangled << "_sum ";
    write_value(os, hist.sum_us);
    os << "\n";
    os << mangled << "_count " << hist.count << "\n";
  }
}

std::string prometheus_text(const MetricsSnapshot& snapshot) {
  std::ostringstream os;
  write_prometheus_text(os, snapshot);
  return os.str();
}

}  // namespace p2auth::obs
