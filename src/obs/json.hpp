// Minimal ordered JSON document, used by the chrome-trace exporter and
// the structured run reports (obs/report.hpp).  Insertion order of object
// members is preserved so emitted documents are deterministic and
// golden-testable; no parsing, only construction and serialization.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <limits>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace p2auth::obs {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kObject, kArray };

  Json() noexcept : type_(Type::kNull) {}
  Json(bool value) : type_(Type::kBool), bool_(value) {}
  Json(double value) : type_(Type::kNumber), number_(value) {}
  Json(std::int64_t value)
      : type_(Type::kNumber), integral_(true), int_(value),
        number_(static_cast<double>(value)) {}
  Json(int value) : Json(static_cast<std::int64_t>(value)) {}
  // Values beyond int64 range fall back to double (closest JSON number)
  // instead of wrapping negative; counters large enough to hit this have
  // long since lost exactness anyway.
  Json(std::uint64_t value) {
    if (value <= static_cast<std::uint64_t>(
                     std::numeric_limits<std::int64_t>::max())) {
      *this = Json(static_cast<std::int64_t>(value));
    } else {
      *this = Json(static_cast<double>(value));
    }
  }
  Json(std::string value) : type_(Type::kString), string_(std::move(value)) {}
  Json(const char* value) : Json(std::string(value)) {}

  static Json object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }
  static Json array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }

  Type type() const noexcept { return type_; }

  // Object member set/overwrite (the document must be an object; throws
  // std::logic_error otherwise).  Returns a reference to the stored value
  // so nested objects can be built in place.
  Json& set(const std::string& key, Json value);

  // Array append (throws std::logic_error on non-arrays).
  Json& push(Json value);

  // Object lookup; nullptr when absent or not an object (used by tests).
  const Json* find(const std::string& key) const noexcept;

  std::size_t size() const noexcept;

  // Serialises the document.  `indent` > 0 pretty-prints with that many
  // spaces per level; 0 emits the compact single-line form.  Non-finite
  // numbers serialise as null (JSON has no NaN/Inf).
  void dump(std::ostream& os, int indent = 2) const;
  std::string dump_string(int indent = 2) const;

 private:
  void dump_impl(std::ostream& os, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  bool integral_ = false;
  std::int64_t int_ = 0;
  double number_ = 0.0;
  std::string string_;
  std::vector<std::pair<std::string, Json>> members_;
  std::vector<Json> elements_;
};

namespace detail {
// Writes `s` JSON-escaped, surrounded by double quotes (shared with the
// streaming chrome-trace writer, which bypasses the Json DOM for bulk).
void write_json_string(std::ostream& os, std::string_view s);
// Writes a JSON number literal (null when non-finite).
void write_json_number(std::ostream& os, double value);
}  // namespace detail

}  // namespace p2auth::obs
