#include "obs/metrics.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>

namespace p2auth::obs {

namespace {

struct LocalHistogram {
  std::uint64_t count = 0;
  double sum_us = 0.0;
  double min_us = 0.0;
  double max_us = 0.0;
  std::array<std::uint64_t, kHistogramBuckets> buckets{};

  void record(double us) {
    if (count == 0) {
      min_us = max_us = us;
    } else {
      min_us = std::min(min_us, us);
      max_us = std::max(max_us, us);
    }
    ++count;
    sum_us += us;
    const auto it = std::lower_bound(kHistogramBoundsUs.begin(),
                                     kHistogramBoundsUs.end(), us);
    ++buckets[static_cast<std::size_t>(it - kHistogramBoundsUs.begin())];
  }

  void merge_into(HistogramSnapshot& out) const {
    if (count == 0) return;
    if (out.count == 0) {
      out.min_us = min_us;
      out.max_us = max_us;
    } else {
      out.min_us = std::min(out.min_us, min_us);
      out.max_us = std::max(out.max_us, max_us);
    }
    out.count += count;
    out.sum_us += sum_us;
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      out.buckets[b] += buckets[b];
    }
  }
};

struct GaugeCell {
  double value = 0.0;
  std::uint64_t seq = 0;  // global sequence of the set; highest wins
};

// Heterogeneous-lookup maps so record calls with a string_view key do
// not allocate unless the metric is new on this thread.
template <typename V>
using NameMap = std::map<std::string, V, std::less<>>;

struct Aggregate {
  NameMap<std::uint64_t> counters;
  NameMap<GaugeCell> gauges;
  NameMap<HistogramSnapshot> histograms;

  void clear() {
    counters.clear();
    gauges.clear();
    histograms.clear();
  }
};

std::mutex& global_mutex() {
  static std::mutex m;
  return m;
}

Aggregate& global_aggregate() {
  static Aggregate aggregate;
  return aggregate;
}

std::atomic<std::uint64_t>& gauge_sequence() {
  static std::atomic<std::uint64_t> seq{0};
  return seq;
}

struct ThreadSink {
  NameMap<std::uint64_t> counters;
  NameMap<GaugeCell> gauges;
  NameMap<LocalHistogram> histograms;

  ThreadSink() {
    // Construct the globals first so the exit-time flush below never
    // runs against destroyed statics (see trace.cpp for the same trick).
    (void)global_mutex();
    (void)global_aggregate();
    (void)gauge_sequence();
  }

  ~ThreadSink() { flush(); }

  void flush() {
    Aggregate& global = global_aggregate();
    const std::lock_guard<std::mutex> lock(global_mutex());
    for (const auto& [name, delta] : counters) {
      global.counters[name] += delta;
    }
    for (const auto& [name, cell] : gauges) {
      GaugeCell& g = global.gauges[name];
      if (cell.seq >= g.seq) g = cell;
    }
    for (const auto& [name, histogram] : histograms) {
      histogram.merge_into(global.histograms[name]);
    }
    counters.clear();
    gauges.clear();
    histograms.clear();
  }

  void clear() {
    counters.clear();
    gauges.clear();
    histograms.clear();
  }
};

ThreadSink& thread_sink() {
  thread_local ThreadSink sink;
  return sink;
}

// find-or-emplace with a string_view key (std::map::operator[] would
// need a std::string up front even on the hit path).
template <typename V>
V& cell(NameMap<V>& map, std::string_view name) {
  const auto it = map.find(name);
  if (it != map.end()) return it->second;
  return map.emplace(std::string(name), V{}).first->second;
}

}  // namespace

void add_counter(std::string_view name, std::uint64_t delta) {
  if (!enabled()) return;
  cell(thread_sink().counters, name) += delta;
}

void set_gauge(std::string_view name, double value) {
  if (!enabled()) return;
  GaugeCell& g = cell(thread_sink().gauges, name);
  g.value = value;
  g.seq = gauge_sequence().fetch_add(1, std::memory_order_relaxed) + 1;
}

void observe_latency_us(std::string_view name, double us) {
  if (!enabled()) return;
  cell(thread_sink().histograms, name).record(us);
}

double HistogramSnapshot::percentile_us(double p) const noexcept {
  if (count == 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  const double target = p * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
    if (buckets[b] == 0) continue;
    const std::uint64_t before = cumulative;
    cumulative += buckets[b];
    if (static_cast<double>(cumulative) < target) continue;
    const double lower = b == 0 ? 0.0 : kHistogramBoundsUs[b - 1];
    const double upper =
        b < kHistogramBoundsUs.size() ? kHistogramBoundsUs[b] : max_us;
    const double within =
        (target - static_cast<double>(before)) /
        static_cast<double>(buckets[b]);
    const double estimate = lower + (upper - lower) * within;
    return std::clamp(estimate, min_us, max_us);
  }
  return max_us;
}

std::uint64_t MetricsSnapshot::counter(const std::string& name) const
    noexcept {
  const auto it = counters.find(name);
  return it == counters.end() ? 0 : it->second;
}

MetricsSnapshot snapshot_metrics() {
  MetricsSnapshot out;
  if constexpr (!kCompiledIn) return out;
  Aggregate merged;
  {
    const std::lock_guard<std::mutex> lock(global_mutex());
    merged = global_aggregate();
  }
  const ThreadSink& local = thread_sink();
  for (const auto& [name, delta] : local.counters) {
    merged.counters[name] += delta;
  }
  for (const auto& [name, cell_value] : local.gauges) {
    GaugeCell& g = merged.gauges[name];
    if (cell_value.seq >= g.seq) g = cell_value;
  }
  NameMap<HistogramSnapshot> histograms = std::move(merged.histograms);
  for (const auto& [name, histogram] : local.histograms) {
    histogram.merge_into(histograms[name]);
  }
  for (auto& [name, value] : merged.counters) {
    out.counters.emplace(name, value);
  }
  for (auto& [name, g] : merged.gauges) {
    out.gauges.emplace(name, g.value);
  }
  for (auto& [name, h] : histograms) {
    out.histograms.emplace(name, h);
  }
  return out;
}

void flush_thread_metrics() {
  if constexpr (!kCompiledIn) return;
  thread_sink().flush();
}

void reset_metrics() {
  if constexpr (!kCompiledIn) return;
  {
    const std::lock_guard<std::mutex> lock(global_mutex());
    global_aggregate().clear();
  }
  thread_sink().clear();
}

ScopedLatency::ScopedLatency(std::string_view histogram) {
  if (!enabled()) return;
  active_ = true;
  name_.assign(histogram);
  start_us_ = now_us();
}

ScopedLatency::~ScopedLatency() {
  if (!active_) return;
  observe_latency_us(name_,
                     static_cast<double>(now_us() - start_us_));
}

}  // namespace p2auth::obs
