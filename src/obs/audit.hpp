// Decision flight recorder: a bounded lock-free ring of structured
// per-decision records, drained by a background writer thread into an
// append-only binary log of CRC32-framed, versioned records (the same
// framing discipline the planned binary model format uses), plus a JSONL
// export and a typed-error reader for forensics.
//
// Layering: obs stays below core, so a record carries the core enums
// (RejectReason, ModelPath, DetectedCase) as stable numeric codes.  The
// code values are pinned by tests in tests/test_audit.cpp; core adapters
// fill them with static_cast and tools/audit_inspect (which links core)
// maps them back to slugs.
//
// Hot-path contract: `AuditRecorder::record()` never blocks and never
// allocates — one fixed-size copy into a ring slot plus two atomic
// operations.  When the ring is full the record is dropped and counted
// (`stats().dropped`), never awaited: authentication latency must not
// inherit disk latency.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hpp"

namespace p2auth::obs {

// ---------------------------------------------------------------------------
// Record

inline constexpr std::size_t kAuditMaxVotes = 8;

// One authentication decision.  Fixed-size and trivially copyable so ring
// slots are plain copies; on disk it is serialized field-by-field in
// little-endian order (never memcpy'd), see audit.cpp.
struct DecisionRecord {
  std::uint64_t seq = 0;          // assigned by the recorder at submit
  std::int64_t timestamp_us = 0;  // obs::now_us timeline
  std::uint32_t user_id = 0;
  std::uint8_t accepted = 0;
  std::uint8_t pin_checked = 0;
  std::uint8_t pin_ok = 0;
  std::uint8_t reason = 0;         // core::RejectReason code
  std::uint8_t model_path = 0;     // core::ModelPath code
  std::uint8_t detected_case = 0;  // core::DetectedCase code
  std::uint8_t num_votes = 0;      // votes[0..num_votes) are valid
  std::uint8_t channels = 0;       // channels assessed (0 = not reached)
  std::int8_t votes[kAuditMaxVotes] = {};  // +1 pass / -1 fail per keystroke
  std::uint32_t channel_mask = 0;  // bit c set = channel c healthy
  float score = 0.0f;      // fused decision score (>= threshold accepts)
  float threshold = 0.0f;  // accept boundary the score was compared to
  // Stage latencies (microseconds): PIN factor, preprocessing + case
  // identification, model scoring, end-to-end.
  float pin_us = 0.0f;
  float preprocess_us = 0.0f;
  float model_us = 0.0f;
  float total_us = 0.0f;
};

// ---------------------------------------------------------------------------
// Binary framing

inline constexpr std::uint16_t kAuditFormatVersion = 1;

// ---------------------------------------------------------------------------
// Lock-free bounded MPMC ring (Vyukov-style ticket ring).  Producers and
// consumers never block; a full ring fails the push instead.

class AuditRing {
 public:
  // Capacity is rounded up to the next power of two (minimum 2).
  explicit AuditRing(std::size_t capacity);

  bool push(const DecisionRecord& record) noexcept;  // false when full
  bool pop(DecisionRecord& out) noexcept;            // false when empty

  std::size_t capacity() const noexcept { return cells_.size(); }
  bool empty() const noexcept;

 private:
  struct Cell {
    std::atomic<std::uint64_t> sequence;
    DecisionRecord record;
  };

  std::vector<Cell> cells_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::uint64_t> enqueue_{0};
  alignas(64) std::atomic<std::uint64_t> dequeue_{0};
};

// ---------------------------------------------------------------------------
// Recorder (writer side)

struct AuditStats {
  std::uint64_t submitted = 0;  // record() calls that entered the ring
  std::uint64_t dropped = 0;    // record() calls refused by a full ring
  std::uint64_t written = 0;    // records framed out to the log
  std::uint64_t bytes = 0;      // bytes appended to the log
};

class AuditRecorder {
 public:
  struct Options {
    std::size_t ring_capacity = 4096;
    // Drainer sleep while the ring is empty.
    std::chrono::milliseconds idle_sleep{1};
  };

  // Opens (truncates) `path` and starts the background drainer.  Throws
  // std::runtime_error when the file cannot be opened.
  AuditRecorder(std::string path, Options options);
  explicit AuditRecorder(std::string path)
      : AuditRecorder(std::move(path), Options{}) {}
  // Stops the drainer, drains the ring and flushes the file.
  ~AuditRecorder();

  AuditRecorder(const AuditRecorder&) = delete;
  AuditRecorder& operator=(const AuditRecorder&) = delete;

  // Assigns `seq` and submits; returns false (and counts the drop) when
  // the ring is full.  Lock-free, allocation-free, never blocks.
  bool record(DecisionRecord record) noexcept;

  // Blocks until every record submitted before the call is on disk (the
  // stream is flushed; cold path, test / shutdown use).
  void flush();

  AuditStats stats() const noexcept;
  const std::string& path() const noexcept { return path_; }

 private:
  void drain_loop();
  void write_frame(const DecisionRecord& record);

  std::string path_;
  Options options_;
  AuditRing ring_;
  std::atomic<std::uint64_t> next_seq_{0};
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> written_{0};
  std::atomic<std::uint64_t> bytes_{0};
  std::atomic<bool> stop_{false};
  struct FileHandle;  // hides <fstream> from the header
  std::unique_ptr<FileHandle> file_;
  std::thread drainer_;
};

// Global sink consulted by the core call sites.  The caller owns the
// recorder and must uninstall (install nullptr) before destroying it.
void install_audit_recorder(AuditRecorder* recorder) noexcept;
AuditRecorder* audit_recorder() noexcept;

// ---------------------------------------------------------------------------
// Reader (typed errors, no exceptions for corrupt input)

enum class AuditError {
  kNone,
  kIoError,        // file could not be opened / read
  kBadHeader,      // file header magic/version/CRC wrong
  kTruncated,      // EOF inside a frame (e.g. a torn final record)
  kBadFrameMagic,  // frame does not start with the frame magic
  kVersionSkew,    // frame written by an unknown format version
  kBadLength,      // frame length field out of range
  kBadCrc,         // frame payload does not match its CRC32
};

const char* to_string(AuditError error) noexcept;

struct AuditReadResult {
  std::vector<DecisionRecord> records;  // frames decoded before the error
  AuditError error = AuditError::kNone;
  std::uint64_t error_offset = 0;  // byte offset of the offending frame

  bool ok() const noexcept { return error == AuditError::kNone; }
};

// Decodes an audit log.  Corruption is reported through the typed error
// (with the records decoded up to that point), never thrown and never
// silently skipped.
AuditReadResult read_audit_log(std::istream& is);
AuditReadResult read_audit_log(const std::string& path);

// CRC32 (IEEE 802.3, polynomial 0xEDB88320) over `data`, exposed for the
// corruption tests and future binary formats sharing the framing.
std::uint32_t crc32(std::span<const std::uint8_t> data) noexcept;

// ---------------------------------------------------------------------------
// Exports

// Maps record codes to human-readable names for the JSONL export and the
// summary.  Defaults print the raw numeric code; tools/audit_inspect
// installs resolvers backed by the core enum slugs.
struct AuditCodeNames {
  std::function<std::string(std::uint8_t)> reason;
  std::function<std::string(std::uint8_t)> model_path;
  std::function<std::string(std::uint8_t)> detected_case;
};

// One compact JSON object per record, one record per line.
void write_audit_jsonl(std::ostream& os,
                       std::span<const DecisionRecord> records,
                       const AuditCodeNames& names = {});

// Aggregate view of a decoded log: counts, accept rate, per-reason
// tallies, score and latency sketch quantiles.
Json summarize_audit(std::span<const DecisionRecord> records,
                     const AuditCodeNames& names = {});

}  // namespace p2auth::obs
