// Prometheus text-exposition-format rendering of a metrics snapshot, so
// a deployment can scrape the same counters/gauges/histograms the run
// reports embed.  Pure formatting: no sockets, no clocks — callers feed
// the output to whatever transport they have (the demo tools write it to
// a file or stdout).
#pragma once

#include <iosfwd>
#include <string>

#include "obs/metrics.hpp"

namespace p2auth::obs {

// Mangles an internal dotted metric name ("auth.accept") into a
// Prometheus-legal one ("p2auth_auth_accept"): prefixes "p2auth_", maps
// every character outside [a-zA-Z0-9_] to '_', and prepends '_' when the
// mangled body would start with a digit.
std::string prometheus_name(std::string_view name);

// Renders the snapshot:
//   * counters  -> `# TYPE <name>_total counter` + one sample
//   * gauges    -> `# TYPE <name> gauge` + one sample
//   * histograms-> `# TYPE <name>_us histogram` + cumulative `le` buckets
//                  (upper bounds in microseconds, final `+Inf`), `_sum`
//                  and `_count`
// Deterministic: metric families render in snapshot (map) order.
void write_prometheus_text(std::ostream& os, const MetricsSnapshot& snapshot);
std::string prometheus_text(const MetricsSnapshot& snapshot);

}  // namespace p2auth::obs
