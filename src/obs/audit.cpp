#include "obs/audit.hpp"

#include <cstring>
#include <fstream>
#include <map>
#include <mutex>
#include <ostream>
#include <stdexcept>
#include <type_traits>
#include <utility>

#include "obs/sketch.hpp"

namespace p2auth::obs {

namespace {

// ---- on-disk layout constants -------------------------------------------
// File header: 8-byte magic, u16 format version, u16 reserved (0), u32
// CRC32 over the preceding 12 bytes.  Record frame: u32 frame magic, u16
// version, u16 payload length, payload, u32 CRC32 over version + length +
// payload.  Everything little-endian.
constexpr std::uint8_t kFileMagic[8] = {'P', '2', 'A', 'U',
                                        'D', 'T', '0', '1'};
constexpr std::uint32_t kFrameMagic = 0xA17D0C0Du;
// v1 payload is fixed-size; the length field exists so future versions
// can grow records without breaking the frame walk.
constexpr std::size_t kPayloadV1 =
    8 + 8 + 4 + 8 * 1 + kAuditMaxVotes + 4 + 4 * 6;
constexpr std::size_t kMaxPayload = 4096;

// ---- little-endian scribble helpers -------------------------------------

void put_bytes(std::vector<std::uint8_t>& out, const void* p,
               std::size_t n) {
  const auto* b = static_cast<const std::uint8_t*>(p);
  out.insert(out.end(), b, b + n);
}

template <typename T>
void put_le(std::vector<std::uint8_t>& out, T value) {
  static_assert(std::is_integral_v<T>);
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    out.push_back(static_cast<std::uint8_t>(
        static_cast<std::make_unsigned_t<T>>(value) >> (8 * i)));
  }
}

void put_f32(std::vector<std::uint8_t>& out, float value) {
  std::uint32_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  put_le(out, bits);
}

struct ByteCursor {
  const std::uint8_t* data = nullptr;
  std::size_t size = 0;
  std::size_t pos = 0;

  bool take(void* out, std::size_t n) noexcept {
    if (pos + n > size) return false;
    std::memcpy(out, data + pos, n);
    pos += n;
    return true;
  }
  template <typename T>
  bool take_le(T& out) noexcept {
    static_assert(std::is_integral_v<T>);
    if (pos + sizeof(T) > size) return false;
    std::make_unsigned_t<T> v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<std::make_unsigned_t<T>>(data[pos + i]) << (8 * i);
    }
    pos += sizeof(T);
    out = static_cast<T>(v);
    return true;
  }
  bool take_f32(float& out) noexcept {
    std::uint32_t bits = 0;
    if (!take_le(bits)) return false;
    std::memcpy(&out, &bits, sizeof(out));
    return true;
  }
};

void encode_payload(const DecisionRecord& r, std::vector<std::uint8_t>& out) {
  put_le(out, r.seq);
  put_le(out, r.timestamp_us);
  put_le(out, r.user_id);
  put_le(out, r.accepted);
  put_le(out, r.pin_checked);
  put_le(out, r.pin_ok);
  put_le(out, r.reason);
  put_le(out, r.model_path);
  put_le(out, r.detected_case);
  put_le(out, r.num_votes);
  put_le(out, r.channels);
  put_bytes(out, r.votes, kAuditMaxVotes);
  put_le(out, r.channel_mask);
  put_f32(out, r.score);
  put_f32(out, r.threshold);
  put_f32(out, r.pin_us);
  put_f32(out, r.preprocess_us);
  put_f32(out, r.model_us);
  put_f32(out, r.total_us);
}

bool decode_payload(ByteCursor cursor, DecisionRecord& r) noexcept {
  return cursor.take_le(r.seq) && cursor.take_le(r.timestamp_us) &&
         cursor.take_le(r.user_id) && cursor.take_le(r.accepted) &&
         cursor.take_le(r.pin_checked) && cursor.take_le(r.pin_ok) &&
         cursor.take_le(r.reason) && cursor.take_le(r.model_path) &&
         cursor.take_le(r.detected_case) && cursor.take_le(r.num_votes) &&
         cursor.take_le(r.channels) &&
         cursor.take(r.votes, kAuditMaxVotes) &&
         cursor.take_le(r.channel_mask) && cursor.take_f32(r.score) &&
         cursor.take_f32(r.threshold) && cursor.take_f32(r.pin_us) &&
         cursor.take_f32(r.preprocess_us) && cursor.take_f32(r.model_us) &&
         cursor.take_f32(r.total_us);
}

std::string code_name(const std::function<std::string(std::uint8_t)>& fn,
                      std::uint8_t code) {
  return fn ? fn(code) : std::to_string(code);
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> data) noexcept {
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const std::uint8_t byte : data) {
    crc ^= byte;
    for (int k = 0; k < 8; ++k) {
      crc = (crc & 1u) ? (crc >> 1) ^ 0xEDB88320u : crc >> 1;
    }
  }
  return crc ^ 0xFFFFFFFFu;
}

// ---------------------------------------------------------------------------
// AuditRing

AuditRing::AuditRing(std::size_t capacity) {
  std::size_t pow2 = 2;
  while (pow2 < capacity) pow2 <<= 1;
  cells_ = std::vector<Cell>(pow2);
  mask_ = pow2 - 1;
  for (std::size_t i = 0; i < pow2; ++i) {
    cells_[i].sequence.store(i, std::memory_order_relaxed);
  }
}

bool AuditRing::push(const DecisionRecord& record) noexcept {
  std::uint64_t pos = enqueue_.load(std::memory_order_relaxed);
  for (;;) {
    Cell& cell = cells_[pos & mask_];
    const std::uint64_t seq = cell.sequence.load(std::memory_order_acquire);
    const auto diff = static_cast<std::int64_t>(seq) -
                      static_cast<std::int64_t>(pos);
    if (diff == 0) {
      if (enqueue_.compare_exchange_weak(pos, pos + 1,
                                         std::memory_order_relaxed)) {
        cell.record = record;
        cell.sequence.store(pos + 1, std::memory_order_release);
        return true;
      }
    } else if (diff < 0) {
      return false;  // full
    } else {
      pos = enqueue_.load(std::memory_order_relaxed);
    }
  }
}

bool AuditRing::pop(DecisionRecord& out) noexcept {
  std::uint64_t pos = dequeue_.load(std::memory_order_relaxed);
  for (;;) {
    Cell& cell = cells_[pos & mask_];
    const std::uint64_t seq = cell.sequence.load(std::memory_order_acquire);
    const auto diff = static_cast<std::int64_t>(seq) -
                      static_cast<std::int64_t>(pos + 1);
    if (diff == 0) {
      if (dequeue_.compare_exchange_weak(pos, pos + 1,
                                         std::memory_order_relaxed)) {
        out = cell.record;
        cell.sequence.store(pos + mask_ + 1, std::memory_order_release);
        return true;
      }
    } else if (diff < 0) {
      return false;  // empty
    } else {
      pos = dequeue_.load(std::memory_order_relaxed);
    }
  }
}

bool AuditRing::empty() const noexcept {
  return dequeue_.load(std::memory_order_acquire) ==
         enqueue_.load(std::memory_order_acquire);
}

// ---------------------------------------------------------------------------
// AuditRecorder

struct AuditRecorder::FileHandle {
  std::ofstream stream;
  std::mutex mutex;  // serializes drainer writes with flush()
  std::vector<std::uint8_t> scratch;
};

AuditRecorder::AuditRecorder(std::string path, Options options)
    : path_(std::move(path)),
      options_(options),
      ring_(options.ring_capacity),
      file_(std::make_unique<FileHandle>()) {
  file_->stream.open(path_, std::ios::binary | std::ios::trunc);
  if (!file_->stream) {
    throw std::runtime_error("AuditRecorder: cannot open " + path_);
  }
  std::vector<std::uint8_t> header;
  put_bytes(header, kFileMagic, sizeof(kFileMagic));
  put_le(header, kAuditFormatVersion);
  put_le(header, std::uint16_t{0});  // reserved
  put_le(header, crc32(header));
  file_->stream.write(reinterpret_cast<const char*>(header.data()),
                      static_cast<std::streamsize>(header.size()));
  bytes_.store(header.size(), std::memory_order_relaxed);
  drainer_ = std::thread([this] { drain_loop(); });
}

AuditRecorder::~AuditRecorder() {
  stop_.store(true, std::memory_order_release);
  if (drainer_.joinable()) drainer_.join();
  // Final drain: the drainer exited after seeing stop_, but records may
  // have landed between its last pass and the join.
  DecisionRecord record;
  while (ring_.pop(record)) write_frame(record);
  file_->stream.flush();
}

bool AuditRecorder::record(DecisionRecord record) noexcept {
  record.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  if (!ring_.push(record)) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void AuditRecorder::write_frame(const DecisionRecord& record) {
  std::vector<std::uint8_t>& buf = file_->scratch;
  buf.clear();
  put_le(buf, kFrameMagic);
  const std::size_t body_begin = buf.size();
  put_le(buf, kAuditFormatVersion);
  put_le(buf, static_cast<std::uint16_t>(kPayloadV1));
  encode_payload(record, buf);
  const std::uint32_t crc = crc32(
      std::span<const std::uint8_t>(buf.data() + body_begin,
                                    buf.size() - body_begin));
  put_le(buf, crc);
  file_->stream.write(reinterpret_cast<const char*>(buf.data()),
                      static_cast<std::streamsize>(buf.size()));
  written_.fetch_add(1, std::memory_order_relaxed);
  bytes_.fetch_add(buf.size(), std::memory_order_relaxed);
}

void AuditRecorder::drain_loop() {
  DecisionRecord record;
  for (;;) {
    bool wrote = false;
    {
      const std::lock_guard<std::mutex> lock(file_->mutex);
      while (ring_.pop(record)) {
        write_frame(record);
        wrote = true;
      }
    }
    if (stop_.load(std::memory_order_acquire)) return;
    if (!wrote) std::this_thread::sleep_for(options_.idle_sleep);
  }
}

void AuditRecorder::flush() {
  // Wait for the drainer to empty the ring, then flush the stream under
  // the write lock so no half-written frame is visible.
  while (!ring_.empty() && !stop_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  const std::lock_guard<std::mutex> lock(file_->mutex);
  DecisionRecord record;
  while (ring_.pop(record)) write_frame(record);
  file_->stream.flush();
}

AuditStats AuditRecorder::stats() const noexcept {
  AuditStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.dropped = dropped_.load(std::memory_order_relaxed);
  s.written = written_.load(std::memory_order_relaxed);
  s.bytes = bytes_.load(std::memory_order_relaxed);
  return s;
}

namespace {
std::atomic<AuditRecorder*> g_audit_recorder{nullptr};
}  // namespace

void install_audit_recorder(AuditRecorder* recorder) noexcept {
  g_audit_recorder.store(recorder, std::memory_order_release);
}

AuditRecorder* audit_recorder() noexcept {
  return g_audit_recorder.load(std::memory_order_acquire);
}

// ---------------------------------------------------------------------------
// Reader

const char* to_string(AuditError error) noexcept {
  switch (error) {
    case AuditError::kNone:
      return "ok";
    case AuditError::kIoError:
      return "io_error";
    case AuditError::kBadHeader:
      return "bad_header";
    case AuditError::kTruncated:
      return "truncated";
    case AuditError::kBadFrameMagic:
      return "bad_frame_magic";
    case AuditError::kVersionSkew:
      return "version_skew";
    case AuditError::kBadLength:
      return "bad_length";
    case AuditError::kBadCrc:
      return "bad_crc";
  }
  return "?";
}

AuditReadResult read_audit_log(std::istream& is) {
  AuditReadResult result;
  const auto fail = [&](AuditError error, std::uint64_t offset) {
    result.error = error;
    result.error_offset = offset;
    return result;
  };

  std::uint8_t header[16];
  is.read(reinterpret_cast<char*>(header), sizeof(header));
  if (is.gcount() != static_cast<std::streamsize>(sizeof(header))) {
    return fail(AuditError::kBadHeader, 0);
  }
  if (std::memcmp(header, kFileMagic, sizeof(kFileMagic)) != 0) {
    return fail(AuditError::kBadHeader, 0);
  }
  const std::uint16_t file_version =
      static_cast<std::uint16_t>(header[8] | (header[9] << 8));
  const std::uint32_t header_crc =
      static_cast<std::uint32_t>(header[12]) |
      (static_cast<std::uint32_t>(header[13]) << 8) |
      (static_cast<std::uint32_t>(header[14]) << 16) |
      (static_cast<std::uint32_t>(header[15]) << 24);
  if (crc32(std::span<const std::uint8_t>(header, 12)) != header_crc) {
    return fail(AuditError::kBadHeader, 0);
  }
  if (file_version != kAuditFormatVersion) {
    return fail(AuditError::kVersionSkew, 0);
  }

  std::uint64_t offset = sizeof(header);
  std::vector<std::uint8_t> frame;
  for (;;) {
    std::uint8_t head[8];  // frame magic + version + length
    is.read(reinterpret_cast<char*>(head), sizeof(head));
    const auto got = static_cast<std::size_t>(is.gcount());
    if (got == 0) return result;  // clean EOF at a frame boundary
    if (got < sizeof(head)) return fail(AuditError::kTruncated, offset);
    const std::uint32_t magic = static_cast<std::uint32_t>(head[0]) |
                                (static_cast<std::uint32_t>(head[1]) << 8) |
                                (static_cast<std::uint32_t>(head[2]) << 16) |
                                (static_cast<std::uint32_t>(head[3]) << 24);
    if (magic != kFrameMagic) return fail(AuditError::kBadFrameMagic, offset);
    const std::uint16_t version =
        static_cast<std::uint16_t>(head[4] | (head[5] << 8));
    const std::uint16_t length =
        static_cast<std::uint16_t>(head[6] | (head[7] << 8));
    if (length > kMaxPayload) return fail(AuditError::kBadLength, offset);
    frame.resize(static_cast<std::size_t>(length) + 4);  // payload + CRC
    is.read(reinterpret_cast<char*>(frame.data()),
            static_cast<std::streamsize>(frame.size()));
    if (static_cast<std::size_t>(is.gcount()) < frame.size()) {
      return fail(AuditError::kTruncated, offset);
    }
    // CRC covers version + length + payload, exactly as written.
    std::vector<std::uint8_t> covered;
    covered.reserve(4 + length);
    covered.push_back(head[4]);
    covered.push_back(head[5]);
    covered.push_back(head[6]);
    covered.push_back(head[7]);
    covered.insert(covered.end(), frame.begin(), frame.begin() + length);
    const std::uint32_t stored =
        static_cast<std::uint32_t>(frame[length]) |
        (static_cast<std::uint32_t>(frame[length + 1]) << 8) |
        (static_cast<std::uint32_t>(frame[length + 2]) << 16) |
        (static_cast<std::uint32_t>(frame[length + 3]) << 24);
    if (crc32(covered) != stored) return fail(AuditError::kBadCrc, offset);
    // Version gate *after* the integrity check: a record from a newer
    // writer is intact but not interpretable; typed error, no guessing.
    if (version != kAuditFormatVersion) {
      return fail(AuditError::kVersionSkew, offset);
    }
    if (length != kPayloadV1) return fail(AuditError::kBadLength, offset);
    DecisionRecord record;
    if (!decode_payload(ByteCursor{frame.data(), length, 0}, record)) {
      return fail(AuditError::kBadLength, offset);
    }
    result.records.push_back(record);
    offset += sizeof(head) + frame.size();
  }
}

AuditReadResult read_audit_log(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    AuditReadResult result;
    result.error = AuditError::kIoError;
    return result;
  }
  return read_audit_log(is);
}

// ---------------------------------------------------------------------------
// Exports

namespace {

Json record_to_json(const DecisionRecord& r, const AuditCodeNames& names) {
  Json doc = Json::object();
  doc.set("seq", static_cast<std::int64_t>(r.seq));
  doc.set("t_us", r.timestamp_us);
  doc.set("user", static_cast<std::int64_t>(r.user_id));
  doc.set("accepted", r.accepted != 0);
  doc.set("pin_checked", r.pin_checked != 0);
  doc.set("pin_ok", r.pin_ok != 0);
  doc.set("reason", code_name(names.reason, r.reason));
  doc.set("model_path", code_name(names.model_path, r.model_path));
  doc.set("case", code_name(names.detected_case, r.detected_case));
  Json votes = Json::array();
  for (std::size_t i = 0; i < r.num_votes && i < kAuditMaxVotes; ++i) {
    votes.push(static_cast<std::int64_t>(r.votes[i]));
  }
  doc.set("votes", std::move(votes));
  doc.set("channels", static_cast<std::int64_t>(r.channels));
  doc.set("channel_mask", static_cast<std::int64_t>(r.channel_mask));
  doc.set("score", static_cast<double>(r.score));
  doc.set("threshold", static_cast<double>(r.threshold));
  Json stages = Json::object();
  stages.set("pin_us", static_cast<double>(r.pin_us));
  stages.set("preprocess_us", static_cast<double>(r.preprocess_us));
  stages.set("model_us", static_cast<double>(r.model_us));
  stages.set("total_us", static_cast<double>(r.total_us));
  doc.set("stages", std::move(stages));
  return doc;
}

}  // namespace

void write_audit_jsonl(std::ostream& os,
                       std::span<const DecisionRecord> records,
                       const AuditCodeNames& names) {
  for (const DecisionRecord& r : records) {
    record_to_json(r, names).dump(os, 0);
    os << '\n';
  }
}

Json summarize_audit(std::span<const DecisionRecord> records,
                     const AuditCodeNames& names) {
  Json doc = Json::object();
  doc.set("records", static_cast<std::int64_t>(records.size()));
  std::uint64_t accepted = 0;
  std::map<std::string, std::uint64_t> by_reason;
  std::map<std::string, std::uint64_t> by_model_path;
  QuantileSketch scores;
  QuantileSketch latency;
  std::uint64_t degraded = 0;
  for (const DecisionRecord& r : records) {
    accepted += r.accepted != 0 ? 1 : 0;
    if (r.accepted == 0) ++by_reason[code_name(names.reason, r.reason)];
    ++by_model_path[code_name(names.model_path, r.model_path)];
    if (r.model_path != 0) scores.add(static_cast<double>(r.score));
    if (r.total_us > 0.0f) latency.add(static_cast<double>(r.total_us));
    if (r.channels > 0) {
      const auto full = (std::uint32_t{1} << r.channels) - 1;
      if ((r.channel_mask & full) != full) ++degraded;
    }
  }
  doc.set("accepted", static_cast<std::int64_t>(accepted));
  doc.set("accept_rate",
          records.empty()
              ? 0.0
              : static_cast<double>(accepted) /
                    static_cast<double>(records.size()));
  doc.set("degraded_channel_attempts", static_cast<std::int64_t>(degraded));
  Json reasons = Json::object();
  for (const auto& [name, count] : by_reason) {
    reasons.set(name, static_cast<std::int64_t>(count));
  }
  doc.set("rejects_by_reason", std::move(reasons));
  Json paths = Json::object();
  for (const auto& [name, count] : by_model_path) {
    paths.set(name, static_cast<std::int64_t>(count));
  }
  doc.set("by_model_path", std::move(paths));
  doc.set("scores", scores.summary());
  doc.set("latency_us", latency.summary());
  return doc;
}

}  // namespace p2auth::obs
