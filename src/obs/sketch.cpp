#include "obs/sketch.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace p2auth::obs {

QuantileSketch::QuantileSketch(SketchOptions options) : options_(options) {
  if (!(options_.relative_accuracy > 0.0) ||
      !(options_.relative_accuracy < 1.0)) {
    throw std::invalid_argument(
        "QuantileSketch: relative_accuracy must be in (0, 1)");
  }
  if (!(options_.min_trackable > 0.0)) {
    throw std::invalid_argument(
        "QuantileSketch: min_trackable must be positive");
  }
  if (options_.max_buckets_per_sign < 2) {
    throw std::invalid_argument("QuantileSketch: need >= 2 buckets");
  }
  const double gamma =
      (1.0 + options_.relative_accuracy) / (1.0 - options_.relative_accuracy);
  log_gamma_ = std::log(gamma);
}

std::int32_t QuantileSketch::index_of(double magnitude) const noexcept {
  return static_cast<std::int32_t>(
      std::ceil(std::log(magnitude) / log_gamma_));
}

double QuantileSketch::representative(std::int32_t index) const noexcept {
  // Midpoint (in relative terms) of the bucket (gamma^(i-1), gamma^i]:
  // 2 * gamma^i / (gamma + 1), which is within alpha of every value the
  // bucket can hold.
  const double gamma = std::exp(log_gamma_);
  return 2.0 * std::exp(static_cast<double>(index) * log_gamma_) /
         (gamma + 1.0);
}

void QuantileSketch::collapse(Buckets& buckets, bool negative_side) {
  // Fold buckets *farthest from zero on the uninteresting end* until the
  // bound holds.  Scores live around an accept boundary at 0, so the
  // informative region of each sign is the end nearest zero: on the
  // positive side the far tail is large indices (collapse is harmless to
  // boundary quantiles there only if mass is near zero, so we collapse
  // the smallest indices like DDSketch and keep the upper tail exact);
  // on the negative side large indices are very negative scores far from
  // the boundary, so those collapse first and near-boundary buckets keep
  // full resolution.
  while (buckets.size() > options_.max_buckets_per_sign) {
    if (negative_side) {
      auto highest = std::prev(buckets.end());
      auto into = std::prev(highest);
      into->second += highest->second;
      buckets.erase(highest);
    } else {
      auto lowest = buckets.begin();
      auto next = std::next(lowest);
      next->second += lowest->second;
      buckets.erase(lowest);
    }
  }
}

void QuantileSketch::add(double x, std::uint64_t weight) {
  if (weight == 0) return;
  if (!std::isfinite(x)) {
    discarded_ += weight;
    return;
  }
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  count_ += weight;
  sum_ += x * static_cast<double>(weight);
  const double magnitude = std::fabs(x);
  if (magnitude < options_.min_trackable) {
    zero_ += weight;
    return;
  }
  Buckets& side = x < 0.0 ? negative_ : positive_;
  side[index_of(magnitude)] += weight;
  collapse(side, x < 0.0);
}

void QuantileSketch::merge(const QuantileSketch& other) {
  if (other.options_.relative_accuracy != options_.relative_accuracy ||
      other.options_.min_trackable != options_.min_trackable) {
    throw std::invalid_argument(
        "QuantileSketch::merge: incompatible bucketing options");
  }
  if (other.count_ == 0 && other.discarded_ == 0) return;
  if (count_ == 0 && other.count_ > 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else if (other.count_ > 0) {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  discarded_ += other.discarded_;
  sum_ += other.sum_;
  zero_ += other.zero_;
  for (const auto& [index, weight] : other.negative_) {
    negative_[index] += weight;
  }
  for (const auto& [index, weight] : other.positive_) {
    positive_[index] += weight;
  }
  collapse(negative_, true);
  collapse(positive_, false);
}

double QuantileSketch::quantile(double q) const noexcept {
  if (count_ == 0) return 0.0;
  // The extremes are tracked exactly; answer them without bucket error.
  if (q <= 0.0) return min_;
  if (q >= 1.0) return max_;
  // Rank of the q-quantile among `count_` ordered observations.
  const auto rank = static_cast<std::uint64_t>(
      q * static_cast<double>(count_ - 1));
  std::uint64_t cumulative = 0;
  // Negative side: most negative first = largest |x| index first.
  for (auto it = negative_.rbegin(); it != negative_.rend(); ++it) {
    cumulative += it->second;
    if (cumulative > rank) {
      return std::clamp(-representative(it->first), min_, max_);
    }
  }
  cumulative += zero_;
  if (cumulative > rank) return std::clamp(0.0, min_, max_);
  for (const auto& [index, weight] : positive_) {
    cumulative += weight;
    if (cumulative > rank) {
      return std::clamp(representative(index), min_, max_);
    }
  }
  return max_;
}

double QuantileSketch::fraction_below(double threshold) const noexcept {
  if (count_ == 0) return 0.0;
  std::uint64_t below = 0;
  for (const auto& [index, weight] : negative_) {
    if (-representative(index) < threshold) below += weight;
  }
  if (0.0 < threshold) below += zero_;
  for (const auto& [index, weight] : positive_) {
    if (representative(index) < threshold) below += weight;
  }
  return static_cast<double>(below) / static_cast<double>(count_);
}

void QuantileSketch::clear() {
  negative_.clear();
  positive_.clear();
  zero_ = 0;
  count_ = 0;
  discarded_ = 0;
  sum_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
}

Json QuantileSketch::summary() const {
  Json doc = Json::object();
  doc.set("count", static_cast<std::int64_t>(count_));
  doc.set("mean", mean());
  doc.set("min", min());
  doc.set("max", max());
  doc.set("p05", quantile(0.05));
  doc.set("p25", quantile(0.25));
  doc.set("p50", quantile(0.50));
  doc.set("p75", quantile(0.75));
  doc.set("p95", quantile(0.95));
  return doc;
}

}  // namespace p2auth::obs
