// Observability control plane: the compile-time and runtime switches
// shared by the tracing (obs/trace.hpp) and metrics (obs/metrics.hpp)
// facilities, plus the common monotonic clock.
//
// Two independent switches gate every recording call:
//   * compile time — the build defines P2AUTH_OBS_ENABLED=0 (CMake option
//     -DP2AUTH_OBS_ENABLED=OFF); `enabled()` is then a constant false and
//     the optimizer removes instrumentation entirely;
//   * run time — `set_enabled(false)` turns recording off with a single
//     relaxed atomic load per call site, so instrumented binaries can run
//     at full speed when telemetry is not wanted.
#pragma once

#include <atomic>
#include <cstdint>

#ifndef P2AUTH_OBS_ENABLED
#define P2AUTH_OBS_ENABLED 1
#endif

namespace p2auth::obs {

// True when instrumentation was compiled into this binary.
inline constexpr bool kCompiledIn = (P2AUTH_OBS_ENABLED != 0);

namespace detail {
// Runtime master switch.  Relaxed ordering is deliberate: toggling races
// benignly with in-flight spans (a span started while enabled records on
// destruction; one started while disabled stays silent).
inline std::atomic<bool> g_runtime_enabled{true};
}  // namespace detail

// True when recording calls should do work right now.
inline bool enabled() noexcept {
  if constexpr (!kCompiledIn) {
    return false;
  } else {
    return detail::g_runtime_enabled.load(std::memory_order_relaxed);
  }
}

// Toggles recording at run time (no-op in a compiled-out build).
inline void set_enabled(bool on) noexcept {
  detail::g_runtime_enabled.store(on, std::memory_order_relaxed);
}

// Microseconds on the shared monotonic timeline (util::Stopwatch under
// the hood).  The epoch is the first call in the process, so span
// timestamps from all threads are directly comparable.
std::int64_t now_us() noexcept;

}  // namespace p2auth::obs
