// Lightweight tracing: RAII scoped spans with nesting, buffered in
// per-thread logs (no locks on the record path) and merged at flush into
// a process-wide event list that exports to the Chrome trace-event JSON
// format (open chrome://tracing or https://ui.perfetto.dev and load the
// file).
//
// Threading model: each thread appends completed spans to its own
// buffer; the buffer is folded into the global list when the thread
// exits or calls `flush_thread_trace()`.  `snapshot_trace()` sees the
// global list plus the calling thread's buffer, so a single-threaded
// program (and any program that joins its workers first) always gets a
// complete trace without synchronisation on the hot path.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "obs/obs.hpp"

namespace p2auth::obs {

// One completed span on the shared monotonic timeline (obs::now_us).
struct SpanEvent {
  std::string name;
  std::string category;
  std::int64_t start_us = 0;
  std::int64_t duration_us = 0;
  std::uint32_t thread_id = 0;  // dense obs-assigned id (1 = first thread)
  std::uint32_t depth = 0;      // nesting depth (0 = top level)
};

// RAII scoped span.  Construction samples the clock and pushes one
// nesting level; destruction records the completed event into the
// calling thread's buffer.  When observability is disabled at
// construction the span is inert (and stays inert even if recording is
// re-enabled before destruction, so depths always balance).
class Span {
 public:
  explicit Span(std::string_view name, std::string_view category = "p2auth");
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  bool active() const noexcept { return active_; }

 private:
  bool active_ = false;
  std::string name_;
  std::string category_;
  std::int64_t start_us_ = 0;
};

// Nesting depth of the calling thread (number of live active spans).
std::uint32_t current_span_depth() noexcept;

// Folds the calling thread's buffered events into the global list.
// Called automatically at thread exit.
void flush_thread_trace();

// All flushed events plus the calling thread's buffer, sorted by
// (start_us, thread_id, duration descending) so a parent precedes its
// children.  Does not clear anything.
std::vector<SpanEvent> snapshot_trace();

// Number of events dropped because a thread buffer hit its cap.
std::uint64_t dropped_span_count() noexcept;

// Clears the global list and the calling thread's buffer.  Threads still
// recording concurrently are unaffected (their later flushes append to
// the fresh list).
void reset_trace();

// Chrome trace-event JSON ("X" complete events, timestamps in us).
void write_chrome_trace(std::ostream& os,
                        const std::vector<SpanEvent>& events);
std::string chrome_trace_json(const std::vector<SpanEvent>& events);

// snapshot_trace() + write to `path`; throws std::runtime_error on I/O
// failure.
void write_chrome_trace_file(const std::string& path);

}  // namespace p2auth::obs
