#include "obs/report.hpp"

#include <fstream>
#include <ostream>
#include <stdexcept>

#include "util/table.hpp"

namespace p2auth::obs {

std::map<std::string, SpanSummary> summarize_spans(
    const std::vector<SpanEvent>& events) {
  std::map<std::string, SpanSummary> out;
  for (const SpanEvent& e : events) {
    SpanSummary& s = out[e.name];
    if (s.count == 0) {
      s.min_us = s.max_us = e.duration_us;
    } else {
      s.min_us = std::min(s.min_us, e.duration_us);
      s.max_us = std::max(s.max_us, e.duration_us);
    }
    ++s.count;
    s.total_us += e.duration_us;
  }
  return out;
}

Report::Report(std::string name)
    : name_(std::move(name)), root_(Json::object()) {
  root_.set("schema", "p2auth.report.v1");
  root_.set("name", name_);
}

Json& Report::section(const std::string& key) {
  if (Json* existing = const_cast<Json*>(root_.find(key))) {
    return *existing;
  }
  return root_.set(key, Json::object());
}

Report& Report::set(const std::string& key, Json value) {
  section("values").set(key, std::move(value));
  return *this;
}

Report& Report::add_table(const std::string& key, const util::Table& table) {
  Json doc = Json::object();
  Json columns = Json::array();
  for (const std::string& c : table.header()) columns.push(c);
  doc.set("columns", std::move(columns));
  Json rows = Json::array();
  for (const std::vector<std::string>& row : table.rows()) {
    Json cells = Json::array();
    for (const std::string& cell : row) cells.push(cell);
    rows.push(std::move(cells));
  }
  doc.set("rows", std::move(rows));
  section("tables").set(key, std::move(doc));
  return *this;
}

Report& Report::attach_metrics(const MetricsSnapshot& metrics) {
  Json doc = Json::object();
  Json counters = Json::object();
  for (const auto& [name, value] : metrics.counters) {
    counters.set(name, value);
  }
  doc.set("counters", std::move(counters));
  Json gauges = Json::object();
  for (const auto& [name, value] : metrics.gauges) {
    gauges.set(name, value);
  }
  doc.set("gauges", std::move(gauges));
  Json histograms = Json::object();
  for (const auto& [name, h] : metrics.histograms) {
    Json entry = Json::object();
    entry.set("count", h.count);
    entry.set("mean_us", h.mean_us());
    entry.set("min_us", h.min_us);
    entry.set("max_us", h.max_us);
    entry.set("p50_us", h.p50_us());
    entry.set("p95_us", h.p95_us());
    entry.set("p99_us", h.p99_us());
    histograms.set(name, std::move(entry));
  }
  doc.set("histograms", std::move(histograms));
  root_.set("metrics", std::move(doc));
  return *this;
}

Report& Report::attach_span_summary(const std::vector<SpanEvent>& events) {
  Json doc = Json::object();
  for (const auto& [name, s] : summarize_spans(events)) {
    Json entry = Json::object();
    entry.set("count", s.count);
    entry.set("total_us", s.total_us);
    entry.set("mean_us", s.count == 0
                             ? 0.0
                             : static_cast<double>(s.total_us) /
                                   static_cast<double>(s.count));
    entry.set("min_us", s.min_us);
    entry.set("max_us", s.max_us);
    doc.set(name, std::move(entry));
  }
  root_.set("spans", std::move(doc));
  return *this;
}

void Report::write(std::ostream& os) const {
  root_.dump(os, 2);
  os << '\n';
}

void Report::write_file(const std::string& path) const {
  std::ofstream os(path);
  if (!os) {
    throw std::runtime_error("Report::write_file: cannot open " + path);
  }
  write(os);
  if (!os) {
    throw std::runtime_error("Report::write_file: write failed: " + path);
  }
}

std::string Report::to_json(int indent) const {
  return root_.dump_string(indent) + "\n";
}

}  // namespace p2auth::obs
