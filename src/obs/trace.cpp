#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <fstream>
#include <mutex>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "obs/json.hpp"

namespace p2auth::obs {

namespace {

// Cap per thread: a runaway loop must not take the process down with it.
// 64 Ki events is ~6 MiB; overflow increments the drop counter instead.
constexpr std::size_t kMaxEventsPerThread = 1 << 16;

std::mutex& global_mutex() {
  static std::mutex m;
  return m;
}

std::vector<SpanEvent>& global_events() {
  static std::vector<SpanEvent> events;
  return events;
}

std::atomic<std::uint64_t>& dropped_counter() {
  static std::atomic<std::uint64_t> dropped{0};
  return dropped;
}

struct ThreadLog {
  std::uint32_t thread_id;
  std::uint32_t depth = 0;
  std::vector<SpanEvent> events;

  ThreadLog() {
    // Touch the globals now: whatever is constructed before this object
    // is destroyed after it, so the exit-time flush in ~ThreadLog always
    // finds them alive.
    (void)global_mutex();
    (void)global_events();
    (void)dropped_counter();
    static std::atomic<std::uint32_t> next_id{1};
    thread_id = next_id.fetch_add(1, std::memory_order_relaxed);
  }

  ~ThreadLog() { flush(); }

  void flush() {
    if (events.empty()) return;
    std::vector<SpanEvent>& global = global_events();
    const std::lock_guard<std::mutex> lock(global_mutex());
    global.insert(global.end(), std::make_move_iterator(events.begin()),
                  std::make_move_iterator(events.end()));
    events.clear();
  }
};

ThreadLog& thread_log() {
  thread_local ThreadLog log;
  return log;
}

void sort_events(std::vector<SpanEvent>& events) {
  std::stable_sort(events.begin(), events.end(),
                   [](const SpanEvent& a, const SpanEvent& b) {
                     if (a.start_us != b.start_us) {
                       return a.start_us < b.start_us;
                     }
                     if (a.thread_id != b.thread_id) {
                       return a.thread_id < b.thread_id;
                     }
                     return a.duration_us > b.duration_us;
                   });
}

}  // namespace

Span::Span(std::string_view name, std::string_view category) {
  if (!enabled()) return;
  active_ = true;
  name_.assign(name);
  category_.assign(category);
  ++thread_log().depth;
  start_us_ = now_us();
}

Span::~Span() {
  if (!active_) return;
  const std::int64_t end_us = now_us();
  ThreadLog& log = thread_log();
  --log.depth;
  if (log.events.size() >= kMaxEventsPerThread) {
    dropped_counter().fetch_add(1, std::memory_order_relaxed);
    return;
  }
  SpanEvent event;
  event.name = std::move(name_);
  event.category = std::move(category_);
  event.start_us = start_us_;
  event.duration_us = end_us - start_us_;
  event.thread_id = log.thread_id;
  event.depth = log.depth;
  log.events.push_back(std::move(event));
}

std::uint32_t current_span_depth() noexcept {
  if constexpr (!kCompiledIn) return 0;
  return thread_log().depth;
}

void flush_thread_trace() {
  if constexpr (!kCompiledIn) return;
  thread_log().flush();
}

std::vector<SpanEvent> snapshot_trace() {
  if constexpr (!kCompiledIn) return {};
  std::vector<SpanEvent> out;
  {
    const std::lock_guard<std::mutex> lock(global_mutex());
    out = global_events();
  }
  const ThreadLog& log = thread_log();
  out.insert(out.end(), log.events.begin(), log.events.end());
  sort_events(out);
  return out;
}

std::uint64_t dropped_span_count() noexcept {
  return dropped_counter().load(std::memory_order_relaxed);
}

void reset_trace() {
  if constexpr (!kCompiledIn) return;
  {
    const std::lock_guard<std::mutex> lock(global_mutex());
    global_events().clear();
  }
  thread_log().events.clear();
  dropped_counter().store(0, std::memory_order_relaxed);
}

void write_chrome_trace(std::ostream& os,
                        const std::vector<SpanEvent>& events) {
  // Streamed (not via the Json DOM): traces can hold 10^5+ events.  One
  // event per line keeps the file diffable and golden-testable.
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const SpanEvent& e : events) {
    os << (first ? "\n" : ",\n");
    first = false;
    os << "{\"name\":";
    detail::write_json_string(os, e.name);
    os << ",\"cat\":";
    detail::write_json_string(os, e.category);
    os << ",\"ph\":\"X\",\"ts\":" << e.start_us << ",\"dur\":"
       << e.duration_us << ",\"pid\":1,\"tid\":" << e.thread_id
       << ",\"args\":{\"depth\":" << e.depth << "}}";
  }
  os << (first ? "]}" : "\n]}");
  os << '\n';
}

std::string chrome_trace_json(const std::vector<SpanEvent>& events) {
  std::ostringstream oss;
  write_chrome_trace(oss, events);
  return oss.str();
}

void write_chrome_trace_file(const std::string& path) {
  std::ofstream os(path);
  if (!os) {
    throw std::runtime_error("write_chrome_trace_file: cannot open " + path);
  }
  write_chrome_trace(os, snapshot_trace());
  if (!os) {
    throw std::runtime_error("write_chrome_trace_file: write failed: " +
                             path);
  }
}

}  // namespace p2auth::obs
