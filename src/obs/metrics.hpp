// Metrics: named counters, gauges, and fixed-bucket latency histograms
// with p50/p95/p99 readout.
//
// Hot-path cost model: every record call is guarded by obs::enabled()
// (one relaxed atomic load; a compile-time constant when the build is
// compiled out) and then touches only a thread-local sink — plain
// increments, no locks, no atomics.  Sinks are merged into a global
// aggregate when a thread exits or calls `flush_thread_metrics()`;
// `snapshot_metrics()` merges the global aggregate with the calling
// thread's sink, so single-threaded programs and programs that join
// their workers before reading always see complete totals.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/obs.hpp"

namespace p2auth::obs {

// Histogram bucket upper bounds in microseconds (1-2-5 decades from 1 us
// to 10 s).  Values above the last bound land in an overflow bucket.
inline constexpr std::array<double, 22> kHistogramBoundsUs = {
    1.0,   2.0,   5.0,   10.0,  20.0,  50.0,  1e2, 2e2, 5e2, 1e3, 2e3,
    5e3,   1e4,   2e4,   5e4,   1e5,   2e5,   5e5, 1e6, 2e6, 5e6, 1e7};
inline constexpr std::size_t kHistogramBuckets =
    kHistogramBoundsUs.size() + 1;  // + overflow

// Adds `delta` to the named counter.
void add_counter(std::string_view name, std::uint64_t delta = 1);

// Sets the named gauge; across threads the most recent set wins.
void set_gauge(std::string_view name, double value);

// Records one latency observation (microseconds) into the named
// histogram.
void observe_latency_us(std::string_view name, double us);

struct HistogramSnapshot {
  std::uint64_t count = 0;
  double sum_us = 0.0;
  double min_us = 0.0;
  double max_us = 0.0;
  std::array<std::uint64_t, kHistogramBuckets> buckets{};

  double mean_us() const noexcept {
    return count == 0 ? 0.0 : sum_us / static_cast<double>(count);
  }
  // Percentile estimate (p in [0, 1]) by linear interpolation inside the
  // containing bucket, clamped to the observed [min, max].
  double percentile_us(double p) const noexcept;
  double p50_us() const noexcept { return percentile_us(0.50); }
  double p95_us() const noexcept { return percentile_us(0.95); }
  double p99_us() const noexcept { return percentile_us(0.99); }
};

struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  // Counter value, 0 when never touched.
  std::uint64_t counter(const std::string& name) const noexcept;
};

// Merged view of the global aggregate plus the calling thread's sink.
MetricsSnapshot snapshot_metrics();

// Folds the calling thread's sink into the global aggregate (automatic
// at thread exit).
void flush_thread_metrics();

// Clears the global aggregate and the calling thread's sink.  Other
// threads must be quiescent (joined or silent), as with reset_trace().
void reset_metrics();

// RAII latency timer: records the scope's wall time into histogram
// `name` on destruction.  Inert when observability is disabled at
// construction.
class ScopedLatency {
 public:
  explicit ScopedLatency(std::string_view histogram);
  ~ScopedLatency();

  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;

 private:
  bool active_ = false;
  std::string name_;
  std::int64_t start_us_ = 0;
};

}  // namespace p2auth::obs
