// Online FRR/FAR drift monitoring.
//
// The paper's 8-week pilot showed per-user PPG templates age, and the
// related smartwatch studies show score distributions shift with
// daily-life conditions and physiological state.  This monitor compares
// *live* score sketches against *enrollment-time* baselines (the
// leave-one-out decision values recorded when the models were fit) and
// raises typed alerts when the deployed models look like they are
// silently degrading — the confidence signal an adaptive re-enrollment
// policy and the continuous-auth mode will consume.
//
// Label model: scores are threshold-adjusted (>= 0 accepts).
//   * genuine side  — model-scored attempts whose PIN factor passed.  An
//     attacker without the PIN never reaches the biometric model, so in
//     deployment this stream is overwhelmingly genuine; its mass below 0
//     estimates the live FRR.
//   * imposter side — attempts known or presumed hostile: evaluation
//     ground truth, lockout-flagged sessions, honeypot entries.  Its
//     mass at/above 0 estimates the live FAR; its upper quantile
//     creeping toward 0 flags imposter-score-creep before the first
//     false accept.
//   * channel health — fraction of attempts with any masked channel,
//     against an enrollment baseline of all-healthy sensors.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/sketch.hpp"

namespace p2auth::obs {

// Enrollment-time score distributions (threshold-adjusted: >= 0 accepts).
struct ScoreBaseline {
  QuantileSketch genuine;
  QuantileSketch imposter;

  bool valid() const noexcept { return genuine.count() > 0; }
  // Mass of the genuine baseline below the accept boundary.
  double estimated_frr() const noexcept {
    return genuine.fraction_below(0.0);
  }
  // Mass of the imposter baseline at/above the accept boundary.
  double estimated_far() const noexcept {
    return imposter.count() == 0 ? 0.0
                                 : 1.0 - imposter.fraction_below(0.0);
  }
};

enum class DriftAlertKind {
  kEstimatedFrrRising,       // genuine scores sliding below the boundary
  kImposterScoreCreep,       // imposter tail closing in on the boundary
  kChannelHealthDegrading,   // masked-channel attempts above budget
};
inline constexpr std::size_t kDriftAlertKinds = 3;

const char* to_string(DriftAlertKind kind) noexcept;
const char* drift_alert_slug(DriftAlertKind kind) noexcept;

struct DriftAlert {
  DriftAlertKind kind = DriftAlertKind::kEstimatedFrrRising;
  double live = 0.0;      // live value that tripped the alert
  double baseline = 0.0;  // enrollment-time reference
  std::string detail;     // human-readable one-liner
};

struct DriftOptions {
  // Minimum live observations per side before the monitor judges.
  std::size_t min_genuine = 24;
  std::size_t min_imposter = 24;
  std::size_t min_channel_attempts = 32;
  // Absolute rise of the estimated FRR over baseline that alerts.
  double frr_rise = 0.10;
  // Imposter tail quantile watched for creep, and the fraction of the
  // (baseline-tail -> boundary) gap it must close to alert.  Falls back
  // to an estimated-FAR rise check when the baseline tail already
  // touches the boundary.
  double imposter_quantile = 0.95;
  double creep_gap_fraction = 0.25;
  double far_rise = 0.05;
  // Live fraction of attempts with any masked channel that alerts.
  double masked_fraction = 0.25;
};

class DriftMonitor {
 public:
  explicit DriftMonitor(ScoreBaseline baseline, DriftOptions options = {});

  // --- live feeds (forward from the decision path) ---
  void observe_genuine(double score);
  void observe_imposter(double score);
  // One decided attempt's channel-health view: `usable_mask` bit c set
  // when channel c stayed healthy, `channels` the number assessed.
  void observe_channels(std::uint32_t usable_mask, std::size_t channels);

  // All currently-firing alerts (pure; recomputed from the sketches).
  std::vector<DriftAlert> check() const;

  // Edge-triggered variant: returns only alerts whose condition was not
  // firing at the previous poll, and bumps the "drift.alert.<slug>" obs
  // counters for them.
  std::vector<DriftAlert> poll_new_alerts();

  // --- live estimates ---
  double estimated_frr() const noexcept {
    return live_genuine_.fraction_below(0.0);
  }
  double estimated_far() const noexcept {
    return live_imposter_.count() == 0
               ? 0.0
               : 1.0 - live_imposter_.fraction_below(0.0);
  }
  double masked_attempt_fraction() const noexcept {
    return channel_attempts_ == 0
               ? 0.0
               : static_cast<double>(degraded_attempts_) /
                     static_cast<double>(channel_attempts_);
  }

  const ScoreBaseline& baseline() const noexcept { return baseline_; }
  const QuantileSketch& live_genuine() const noexcept {
    return live_genuine_;
  }
  const QuantileSketch& live_imposter() const noexcept {
    return live_imposter_;
  }
  const DriftOptions& options() const noexcept { return options_; }

  // Folds another monitor's live sketches into this one (per-user ->
  // population-wide roll-up).  Baselines are merged too.
  void merge(const DriftMonitor& other);

  // {"baseline": {...}, "live": {...}, "alerts": [...]} for run reports.
  Json summary() const;

 private:
  ScoreBaseline baseline_;
  DriftOptions options_;
  QuantileSketch live_genuine_;
  QuantileSketch live_imposter_;
  std::uint64_t channel_attempts_ = 0;
  std::uint64_t degraded_attempts_ = 0;
  std::array<bool, kDriftAlertKinds> active_{};
};

}  // namespace p2auth::obs
