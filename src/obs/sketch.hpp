// Mergeable streaming quantile sketches for decision-score distributions.
//
// DDSketch-style relative-accuracy sketch: values are hashed into
// logarithmic buckets (index = ceil(log_gamma |x|), gamma derived from
// the configured relative accuracy), kept separately for the negative and
// positive halves plus an exact near-zero count, so score distributions
// that straddle an accept boundary at 0 keep their sign structure.  Any
// quantile estimate is within `relative_accuracy` of the true value in
// relative terms (until bucket collapse, see below).
//
// Fixed memory: each sign keeps at most `max_buckets_per_sign` buckets;
// on overflow the smallest-magnitude buckets are collapsed together, so
// the tails furthest from zero (the interesting end for drift detection)
// keep full resolution while worst-case memory stays bounded.
//
// Mergeable: two sketches built with the same options merge bucket-wise
// into the exact sketch of the concatenated streams (modulo the same
// collapse bound), which is what lets per-user sketches roll up into
// population-wide ones.  Deterministic: no clocks, no randomness.
#pragma once

#include <cstdint>
#include <map>

#include "obs/json.hpp"

namespace p2auth::obs {

struct SketchOptions {
  // Relative accuracy alpha of quantile estimates (0 < alpha < 1).
  double relative_accuracy = 0.01;
  // Magnitudes below this are counted in the exact zero bucket.
  double min_trackable = 1e-6;
  // Memory bound per sign; smallest-magnitude buckets collapse first.
  std::size_t max_buckets_per_sign = 512;
};

class QuantileSketch {
 public:
  // Non-explicit default so aggregates holding a sketch (e.g. enrollment
  // baselines) still brace-initialize cleanly.
  QuantileSketch() : QuantileSketch(SketchOptions{}) {}
  explicit QuantileSketch(SketchOptions options);

  // Adds `weight` observations of value `x`.  Non-finite values are
  // counted in `discarded()` instead of poisoning the quantiles.
  void add(double x, std::uint64_t weight = 1);

  // Folds `other` into this sketch.  Throws std::invalid_argument when
  // the two sketches were built with different bucketing options.
  void merge(const QuantileSketch& other);

  std::uint64_t count() const noexcept { return count_; }
  std::uint64_t discarded() const noexcept { return discarded_; }
  double sum() const noexcept { return sum_; }
  double min() const noexcept { return count_ == 0 ? 0.0 : min_; }
  double max() const noexcept { return count_ == 0 ? 0.0 : max_; }
  double mean() const noexcept {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }

  // Quantile estimate for q in [0, 1]; 0 when empty.  Clamped to the
  // observed [min, max].
  double quantile(double q) const noexcept;

  // Estimated fraction of observations strictly below `threshold`
  // (each bucket counts via its representative value; the exact zero
  // bucket counts below only when threshold > 0).  0 when empty.
  double fraction_below(double threshold) const noexcept;

  // Number of live buckets (both signs), for memory-bound tests.
  std::size_t bucket_count() const noexcept {
    return negative_.size() + positive_.size();
  }

  void clear();

  const SketchOptions& options() const noexcept { return options_; }

  // {"count": N, "mean": ..., "min": ..., "max": ..., "p05": ...,
  //  "p25": ..., "p50": ..., "p75": ..., "p95": ...} for run reports.
  Json summary() const;

 private:
  using Buckets = std::map<std::int32_t, std::uint64_t>;

  std::int32_t index_of(double magnitude) const noexcept;
  double representative(std::int32_t index) const noexcept;
  void collapse(Buckets& buckets, bool negative_side);

  SketchOptions options_;
  double log_gamma_ = 0.0;  // log((1+alpha)/(1-alpha)) precomputed
  Buckets negative_;        // keyed by index of |x|, values < 0
  Buckets positive_;
  std::uint64_t zero_ = 0;  // |x| < min_trackable
  std::uint64_t count_ = 0;
  std::uint64_t discarded_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace p2auth::obs
