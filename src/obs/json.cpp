#include "obs/json.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace p2auth::obs {

namespace detail {

void write_json_string(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\r':
        os << "\\r";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void write_json_number(std::ostream& os, double value) {
  if (!std::isfinite(value)) {
    os << "null";
    return;
  }
  // Integers within the exactly-representable range print without a
  // fractional part; everything else uses shortest-ish %g.
  if (value == std::floor(value) && std::fabs(value) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(std::llround(value)));
    os << buf;
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.12g", value);
  os << buf;
}

}  // namespace detail

Json& Json::set(const std::string& key, Json value) {
  if (type_ != Type::kObject) {
    throw std::logic_error("Json::set: not an object");
  }
  for (auto& [k, v] : members_) {
    if (k == key) {
      v = std::move(value);
      return v;
    }
  }
  members_.emplace_back(key, std::move(value));
  return members_.back().second;
}

Json& Json::push(Json value) {
  if (type_ != Type::kArray) {
    throw std::logic_error("Json::push: not an array");
  }
  elements_.push_back(std::move(value));
  return elements_.back();
}

const Json* Json::find(const std::string& key) const noexcept {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::size_t Json::size() const noexcept {
  switch (type_) {
    case Type::kObject:
      return members_.size();
    case Type::kArray:
      return elements_.size();
    default:
      return 0;
  }
}

namespace {

void write_newline_indent(std::ostream& os, int indent, int depth) {
  if (indent <= 0) return;
  os << '\n';
  for (int i = 0; i < indent * depth; ++i) os << ' ';
}

}  // namespace

void Json::dump_impl(std::ostream& os, int indent, int depth) const {
  switch (type_) {
    case Type::kNull:
      os << "null";
      return;
    case Type::kBool:
      os << (bool_ ? "true" : "false");
      return;
    case Type::kNumber:
      if (integral_) {
        os << int_;
      } else {
        detail::write_json_number(os, number_);
      }
      return;
    case Type::kString:
      detail::write_json_string(os, string_);
      return;
    case Type::kObject: {
      if (members_.empty()) {
        os << "{}";
        return;
      }
      os << '{';
      bool first = true;
      for (const auto& [k, v] : members_) {
        if (!first) os << ',';
        first = false;
        write_newline_indent(os, indent, depth + 1);
        detail::write_json_string(os, k);
        os << (indent > 0 ? ": " : ":");
        v.dump_impl(os, indent, depth + 1);
      }
      write_newline_indent(os, indent, depth);
      os << '}';
      return;
    }
    case Type::kArray: {
      if (elements_.empty()) {
        os << "[]";
        return;
      }
      os << '[';
      bool first = true;
      for (const Json& v : elements_) {
        if (!first) os << ',';
        first = false;
        write_newline_indent(os, indent, depth + 1);
        v.dump_impl(os, indent, depth + 1);
      }
      write_newline_indent(os, indent, depth);
      os << ']';
      return;
    }
  }
}

void Json::dump(std::ostream& os, int indent) const {
  dump_impl(os, indent, 0);
}

std::string Json::dump_string(int indent) const {
  std::ostringstream oss;
  dump(oss, indent);
  return oss.str();
}

}  // namespace p2auth::obs
