#include "obs/json.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace p2auth::obs {

namespace detail {

namespace {

// Length of the valid UTF-8 sequence starting at s[i], or 0 when the
// bytes there are not well-formed UTF-8 (truncated tail, stray
// continuation byte, overlong encoding, surrogate, > U+10FFFF).
std::size_t utf8_sequence_length(std::string_view s, std::size_t i) {
  const auto byte = [&](std::size_t k) {
    return static_cast<unsigned char>(s[k]);
  };
  const unsigned char lead = byte(i);
  std::size_t need = 0;
  unsigned char lo = 0x80, hi = 0xbf;  // bounds for the first continuation
  if (lead <= 0x7f) return 1;
  if (lead >= 0xc2 && lead <= 0xdf) {
    need = 1;
  } else if (lead >= 0xe0 && lead <= 0xef) {
    need = 2;
    if (lead == 0xe0) lo = 0xa0;        // reject overlong
    if (lead == 0xed) hi = 0x9f;        // reject surrogates
  } else if (lead >= 0xf0 && lead <= 0xf4) {
    need = 3;
    if (lead == 0xf0) lo = 0x90;        // reject overlong
    if (lead == 0xf4) hi = 0x8f;        // reject > U+10FFFF
  } else {
    return 0;  // 0x80-0xc1 (continuation/overlong lead) or 0xf5-0xff
  }
  if (i + need >= s.size()) return 0;  // truncated sequence
  if (byte(i + 1) < lo || byte(i + 1) > hi) return 0;
  for (std::size_t k = 2; k <= need; ++k) {
    const unsigned char b = byte(i + k);
    if (b < 0x80 || b > 0xbf) return 0;
  }
  return need + 1;
}

}  // namespace

void write_json_string(std::ostream& os, std::string_view s) {
  os << '"';
  for (std::size_t i = 0; i < s.size();) {
    const char c = s[i];
    switch (c) {
      case '"':
        os << "\\\"";
        ++i;
        continue;
      case '\\':
        os << "\\\\";
        ++i;
        continue;
      case '\n':
        os << "\\n";
        ++i;
        continue;
      case '\r':
        os << "\\r";
        ++i;
        continue;
      case '\t':
        os << "\\t";
        ++i;
        continue;
      default:
        break;
    }
    const auto byte = static_cast<unsigned char>(c);
    if (byte < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x",
                    static_cast<unsigned>(byte));
      os << buf;
      ++i;
      continue;
    }
    if (byte < 0x80) {
      os << c;
      ++i;
      continue;
    }
    // Non-ASCII: pass well-formed UTF-8 through untouched; anything else
    // (a raw sensor name, a corrupted slug) becomes U+FFFD so the
    // emitted document stays valid JSON instead of smuggling the bad
    // bytes into every downstream parser.
    const std::size_t len = utf8_sequence_length(s, i);
    if (len == 0) {
      os << "\\ufffd";
      ++i;
    } else {
      os << s.substr(i, len);
      i += len;
    }
  }
  os << '"';
}

void write_json_number(std::ostream& os, double value) {
  if (!std::isfinite(value)) {
    os << "null";
    return;
  }
  // Integers within the exactly-representable range print without a
  // fractional part; everything else uses shortest-ish %g.
  if (value == std::floor(value) && std::fabs(value) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(std::llround(value)));
    os << buf;
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.12g", value);
  os << buf;
}

}  // namespace detail

Json& Json::set(const std::string& key, Json value) {
  if (type_ != Type::kObject) {
    throw std::logic_error("Json::set: not an object");
  }
  for (auto& [k, v] : members_) {
    if (k == key) {
      v = std::move(value);
      return v;
    }
  }
  members_.emplace_back(key, std::move(value));
  return members_.back().second;
}

Json& Json::push(Json value) {
  if (type_ != Type::kArray) {
    throw std::logic_error("Json::push: not an array");
  }
  elements_.push_back(std::move(value));
  return elements_.back();
}

const Json* Json::find(const std::string& key) const noexcept {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::size_t Json::size() const noexcept {
  switch (type_) {
    case Type::kObject:
      return members_.size();
    case Type::kArray:
      return elements_.size();
    default:
      return 0;
  }
}

namespace {

void write_newline_indent(std::ostream& os, int indent, int depth) {
  if (indent <= 0) return;
  os << '\n';
  for (int i = 0; i < indent * depth; ++i) os << ' ';
}

}  // namespace

void Json::dump_impl(std::ostream& os, int indent, int depth) const {
  switch (type_) {
    case Type::kNull:
      os << "null";
      return;
    case Type::kBool:
      os << (bool_ ? "true" : "false");
      return;
    case Type::kNumber:
      if (integral_) {
        os << int_;
      } else {
        detail::write_json_number(os, number_);
      }
      return;
    case Type::kString:
      detail::write_json_string(os, string_);
      return;
    case Type::kObject: {
      if (members_.empty()) {
        os << "{}";
        return;
      }
      os << '{';
      bool first = true;
      for (const auto& [k, v] : members_) {
        if (!first) os << ',';
        first = false;
        write_newline_indent(os, indent, depth + 1);
        detail::write_json_string(os, k);
        os << (indent > 0 ? ": " : ":");
        v.dump_impl(os, indent, depth + 1);
      }
      write_newline_indent(os, indent, depth);
      os << '}';
      return;
    }
    case Type::kArray: {
      if (elements_.empty()) {
        os << "[]";
        return;
      }
      os << '[';
      bool first = true;
      for (const Json& v : elements_) {
        if (!first) os << ',';
        first = false;
        write_newline_indent(os, indent, depth + 1);
        v.dump_impl(os, indent, depth + 1);
      }
      write_newline_indent(os, indent, depth);
      os << ']';
      return;
    }
  }
}

void Json::dump(std::ostream& os, int indent) const {
  dump_impl(os, indent, 0);
}

std::string Json::dump_string(int indent) const {
  std::ostringstream oss;
  dump(oss, indent);
  return oss.str();
}

}  // namespace p2auth::obs
