#include "obs/drift.hpp"

#include <cmath>
#include <utility>

#include "obs/metrics.hpp"

namespace p2auth::obs {

const char* to_string(DriftAlertKind kind) noexcept {
  switch (kind) {
    case DriftAlertKind::kEstimatedFrrRising:
      return "EstimatedFrrRising";
    case DriftAlertKind::kImposterScoreCreep:
      return "ImposterScoreCreep";
    case DriftAlertKind::kChannelHealthDegrading:
      return "ChannelHealthDegrading";
  }
  return "Unknown";
}

const char* drift_alert_slug(DriftAlertKind kind) noexcept {
  switch (kind) {
    case DriftAlertKind::kEstimatedFrrRising:
      return "estimated_frr_rising";
    case DriftAlertKind::kImposterScoreCreep:
      return "imposter_score_creep";
    case DriftAlertKind::kChannelHealthDegrading:
      return "channel_health_degrading";
  }
  return "unknown";
}

DriftMonitor::DriftMonitor(ScoreBaseline baseline, DriftOptions options)
    : baseline_(std::move(baseline)),
      options_(options),
      live_genuine_(baseline_.genuine.options()),
      live_imposter_(baseline_.imposter.options()) {}

void DriftMonitor::observe_genuine(double score) {
  live_genuine_.add(score);
}

void DriftMonitor::observe_imposter(double score) {
  live_imposter_.add(score);
}

void DriftMonitor::observe_channels(std::uint32_t usable_mask,
                                    std::size_t channels) {
  if (channels == 0) return;
  ++channel_attempts_;
  const std::uint32_t all =
      channels >= 32 ? ~0u : ((1u << channels) - 1u);
  if ((usable_mask & all) != all) ++degraded_attempts_;
}

std::vector<DriftAlert> DriftMonitor::check() const {
  std::vector<DriftAlert> alerts;

  // 1. Estimated FRR rising: genuine mass below the boundary exceeds the
  //    enrollment-time estimate by more than the configured rise.
  if (baseline_.valid() && live_genuine_.count() >= options_.min_genuine) {
    const double base_frr = baseline_.estimated_frr();
    const double live_frr = estimated_frr();
    if (live_frr > base_frr + options_.frr_rise) {
      DriftAlert alert;
      alert.kind = DriftAlertKind::kEstimatedFrrRising;
      alert.live = live_frr;
      alert.baseline = base_frr;
      alert.detail = "estimated FRR " + std::to_string(live_frr) +
                     " vs enrollment baseline " + std::to_string(base_frr);
      alerts.push_back(std::move(alert));
    }
  }

  // 2. Imposter score creep: the watched upper quantile of the live
  //    imposter distribution has closed a meaningful fraction of the gap
  //    between the baseline tail and the accept boundary at 0.  When the
  //    baseline tail already touches the boundary the gap is degenerate,
  //    so fall back to an estimated-FAR rise check.
  if (baseline_.imposter.count() > 0 &&
      live_imposter_.count() >= options_.min_imposter) {
    const double base_tail =
        baseline_.imposter.quantile(options_.imposter_quantile);
    const double live_tail =
        live_imposter_.quantile(options_.imposter_quantile);
    bool creeping = false;
    if (base_tail < 0.0) {
      // Gap from the baseline tail up to the boundary; creep means the
      // live tail moved at least `creep_gap_fraction` of it.
      const double gap = -base_tail;
      creeping = live_tail - base_tail >= options_.creep_gap_fraction * gap;
    } else {
      creeping = estimated_far() >
                 baseline_.estimated_far() + options_.far_rise;
    }
    if (creeping) {
      DriftAlert alert;
      alert.kind = DriftAlertKind::kImposterScoreCreep;
      alert.live = live_tail;
      alert.baseline = base_tail;
      alert.detail = "imposter q" +
                     std::to_string(static_cast<int>(
                         options_.imposter_quantile * 100.0)) +
                     " " + std::to_string(live_tail) +
                     " vs enrollment baseline " + std::to_string(base_tail);
      alerts.push_back(std::move(alert));
    }
  }

  // 3. Channel health: too many attempts arriving with masked channels.
  if (channel_attempts_ >= options_.min_channel_attempts) {
    const double fraction = masked_attempt_fraction();
    if (fraction > options_.masked_fraction) {
      DriftAlert alert;
      alert.kind = DriftAlertKind::kChannelHealthDegrading;
      alert.live = fraction;
      alert.baseline = options_.masked_fraction;
      alert.detail = "masked-channel attempt fraction " +
                     std::to_string(fraction) + " above budget " +
                     std::to_string(options_.masked_fraction);
      alerts.push_back(std::move(alert));
    }
  }

  return alerts;
}

std::vector<DriftAlert> DriftMonitor::poll_new_alerts() {
  std::array<bool, kDriftAlertKinds> firing{};
  std::vector<DriftAlert> all = check();
  std::vector<DriftAlert> fresh;
  for (auto& alert : all) {
    const auto slot = static_cast<std::size_t>(alert.kind);
    firing[slot] = true;
    if (!active_[slot]) {
      if (enabled()) {
        add_counter(std::string("drift.alert.") +
                    drift_alert_slug(alert.kind));
      }
      fresh.push_back(std::move(alert));
    }
  }
  active_ = firing;
  return fresh;
}

void DriftMonitor::merge(const DriftMonitor& other) {
  baseline_.genuine.merge(other.baseline_.genuine);
  baseline_.imposter.merge(other.baseline_.imposter);
  live_genuine_.merge(other.live_genuine_);
  live_imposter_.merge(other.live_imposter_);
  channel_attempts_ += other.channel_attempts_;
  degraded_attempts_ += other.degraded_attempts_;
}

Json DriftMonitor::summary() const {
  Json doc = Json::object();

  Json baseline = Json::object();
  baseline.set("genuine", baseline_.genuine.summary());
  baseline.set("imposter", baseline_.imposter.summary());
  baseline.set("estimated_frr", baseline_.estimated_frr());
  baseline.set("estimated_far", baseline_.estimated_far());
  doc.set("baseline", std::move(baseline));

  Json live = Json::object();
  live.set("genuine", live_genuine_.summary());
  live.set("imposter", live_imposter_.summary());
  live.set("estimated_frr", estimated_frr());
  live.set("estimated_far", estimated_far());
  live.set("channel_attempts",
           static_cast<std::int64_t>(channel_attempts_));
  live.set("degraded_attempts",
           static_cast<std::int64_t>(degraded_attempts_));
  live.set("masked_attempt_fraction", masked_attempt_fraction());
  doc.set("live", std::move(live));

  Json alerts = Json::array();
  for (const auto& alert : check()) {
    Json entry = Json::object();
    entry.set("kind", std::string(drift_alert_slug(alert.kind)));
    entry.set("live", alert.live);
    entry.set("baseline", alert.baseline);
    entry.set("detail", alert.detail);
    alerts.push(std::move(entry));
  }
  doc.set("alerts", std::move(alerts));

  return doc;
}

}  // namespace p2auth::obs
