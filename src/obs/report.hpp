// Structured run reports: a machine-readable JSON artifact (BENCH_*.json
// and friends) replacing free-text bench output, so perf figures can be
// tracked across commits.  A report is an ordered JSON object with a
// fixed envelope:
//
//   {
//     "schema": "p2auth.report.v1",
//     "name": "<report name>",
//     "values": { ... },            // set()
//     "tables": { ... },            // add_table()
//     "metrics": { ... },           // attach_metrics()
//     "spans": { ... }              // attach_span_summary()
//   }
//
// Sections appear only when populated; everything is deterministic given
// the same inputs (no timestamps unless the caller adds one).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace p2auth::util {
class Table;
}  // namespace p2auth::util

namespace p2auth::obs {

// Per-name aggregate of span events (the report form of a trace).
struct SpanSummary {
  std::uint64_t count = 0;
  std::int64_t total_us = 0;
  std::int64_t min_us = 0;
  std::int64_t max_us = 0;
};

// Aggregates events by span name (deterministic: sorted by name).
std::map<std::string, SpanSummary> summarize_spans(
    const std::vector<SpanEvent>& events);

class Report {
 public:
  explicit Report(std::string name);

  const std::string& name() const noexcept { return name_; }

  // Full access to the document for callers with bespoke structure.
  Json& root() noexcept { return root_; }

  // Sets a scalar (or prebuilt Json) under "values".
  Report& set(const std::string& key, Json value);

  // Embeds a rendered util::Table under "tables" as
  // {"columns": [...], "rows": [[...], ...]} (cells are the table's
  // formatted strings).
  Report& add_table(const std::string& key, const util::Table& table);

  // Embeds a metrics snapshot: counters and gauges verbatim, histograms
  // as {count, mean_us, min_us, max_us, p50_us, p95_us, p99_us}.
  Report& attach_metrics(const MetricsSnapshot& metrics);

  // Embeds per-name span aggregates {count, total_us, mean_us, min_us,
  // max_us}.
  Report& attach_span_summary(const std::vector<SpanEvent>& events);

  void write(std::ostream& os) const;
  // Throws std::runtime_error on I/O failure.
  void write_file(const std::string& path) const;
  std::string to_json(int indent = 2) const;

 private:
  // Returns the named top-level section, creating it on first use.
  Json& section(const std::string& key);

  std::string name_;
  Json root_;
};

}  // namespace p2auth::obs
