// Deterministic sensor-fault injection (degraded-sensor resilience).
//
// The paper assumes four clean MAX30101 channels at 100 Hz; real wrist
// wear delivers dropouts, saturated LEDs, NaN bursts from a flaky I2C
// link, motion spikes and skewed phone<->watch clocks.  A FaultPlan
// corrupts a simulated Trial (MultiChannelTrace + EntryRecord) with a
// configurable mix of these faults, seeded via util::Rng so every sweep
// point is exactly reproducible — the chaos bench replays the *same*
// trials at growing severity and asserts that the false-accept rate
// never rises above the clean-input baseline.
#pragma once

#include <cstddef>

#include "keystroke/events.hpp"
#include "ppg/simulator.hpp"
#include "util/rng.hpp"

namespace p2auth::sim {

// Fault mix at full severity.  Every probability/intensity below is
// multiplied by `severity` (clamped to [0, 1]); severity 0 leaves the
// trial untouched.
struct FaultConfig {
  double severity = 0.0;  // master intensity knob

  // Per-channel transient dropout (sensor reads 0 for a span).
  double dropout_prob = 0.6;
  double dropout_s = 0.6;
  // Per-channel hard failure: the channel holds its last value from a
  // random instant to the end of the trace.
  double flatline_prob = 0.25;
  // Per-channel LED/ADC saturation: the waveform is clipped symmetrically,
  // removing up to `saturation_depth` of the amplitude range.
  double saturation_prob = 0.3;
  double saturation_depth = 0.7;
  // Per-channel burst of non-finite samples (flaky sensor link).
  double nan_burst_prob = 0.4;
  double nan_burst_s = 0.3;
  // Impulsive amplitude spikes (motion bursts), per channel per second,
  // each `spike_gain` channel-ranges tall.
  double spike_rate_hz = 1.0;
  double spike_gain = 8.0;
  // Watch<->phone clock skew: every recorded keystroke timestamp shifts
  // by one uniform draw in [-clock_skew_s, +clock_skew_s] (times severity).
  double clock_skew_s = 0.3;
  // Phone-log faults: a duplicated keystroke event (logged key included,
  // as a buggy IME would) and adjacent timestamps delivered out of order.
  double duplicate_event_prob = 0.3;
  double swap_event_prob = 0.3;
};

// What one apply() actually did, for bench reporting.
struct FaultLog {
  std::size_t dropouts = 0;
  std::size_t flatlines = 0;
  std::size_t saturated_channels = 0;
  std::size_t nan_bursts = 0;
  std::size_t spikes = 0;
  std::size_t duplicated_events = 0;
  std::size_t swapped_events = 0;
  // Clock skew actually applied to the entry's timestamps (after the
  // draw is bounded so no event would be pushed below t=0), not the raw
  // severity-scaled draw.  Zero when no skew fault fired.
  double clock_skew_s = 0.0;

  // Count of discrete fault events.  Clock skew is deliberately
  // excluded: it is a continuous offset reported via clock_skew_s, and
  // folding its presence into the count would make total() jump by one
  // whenever the skew draw is nonzero, regardless of magnitude.
  std::size_t total() const noexcept {
    return dropouts + flatlines + saturated_channels + nan_bursts + spikes +
           duplicated_events + swapped_events;
  }
};

// A seeded, reusable corruption plan.  Every apply() draws from the
// plan's own Rng stream, so a plan constructed with the same (config,
// rng state) corrupts identically.
class FaultPlan {
 public:
  FaultPlan(FaultConfig config, util::Rng rng);

  // Corrupts `trace` and `entry` in place and reports what was done.
  FaultLog apply(ppg::MultiChannelTrace& trace,
                 keystroke::EntryRecord& entry);

  const FaultConfig& config() const noexcept { return config_; }

 private:
  FaultConfig config_;
  util::Rng rng_;
};

}  // namespace p2auth::sim
