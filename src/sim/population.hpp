// Study population generation.
//
// Mirrors the paper's experimental cohorts:
//   * 15 legitimate volunteers (enrolled users),
//   * 4 attackers (used for random and emulating attacks),
//   * a pool of third-party users whose data seeds the negative class
//     during enrollment (the paper stores third-party data on the phone
//     and mixes ~100 samples into training).
// All profiles are drawn deterministically from a master seed.
#pragma once

#include <cstdint>
#include <vector>

#include "ppg/profile.hpp"
#include "util/rng.hpp"

namespace p2auth::sim {

struct PopulationConfig {
  std::size_t num_users = 15;         // paper: 15 volunteers
  std::size_t num_attackers = 4;      // paper: 4 attackers
  std::size_t num_third_parties = 20; // donors of negative training data
  std::uint64_t seed = 7;
};

struct Population {
  std::vector<ppg::UserProfile> users;
  std::vector<ppg::UserProfile> attackers;
  std::vector<ppg::UserProfile> third_parties;
};

// Generates the full population.  User ids are globally unique across the
// three cohorts.
Population make_population(const PopulationConfig& config);

}  // namespace p2auth::sim
