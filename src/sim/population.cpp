#include "sim/population.hpp"

namespace p2auth::sim {

Population make_population(const PopulationConfig& config) {
  Population pop;
  util::Rng master(config.seed, 0x5eed5eed5eed5eedULL);
  std::uint32_t next_id = 0;
  util::Rng user_rng = master.fork("users");
  for (std::size_t i = 0; i < config.num_users; ++i) {
    pop.users.push_back(ppg::UserProfile::sample(next_id++, user_rng));
  }
  util::Rng attacker_rng = master.fork("attackers");
  for (std::size_t i = 0; i < config.num_attackers; ++i) {
    ppg::UserProfile p = ppg::UserProfile::sample(next_id++, attacker_rng);
    p.name = "attacker" + std::to_string(i);
    pop.attackers.push_back(std::move(p));
  }
  util::Rng third_rng = master.fork("third-parties");
  for (std::size_t i = 0; i < config.num_third_parties; ++i) {
    ppg::UserProfile p = ppg::UserProfile::sample(next_id++, third_rng);
    p.name = "third" + std::to_string(i);
    pop.third_parties.push_back(std::move(p));
  }
  return pop;
}

}  // namespace p2auth::sim
