#include "sim/dataset.hpp"

#include <stdexcept>

#include "keystroke/pinpad.hpp"

namespace p2auth::sim {

Trial make_trial(const ppg::UserProfile& subject, const keystroke::Pin& pin,
                 const TrialOptions& options, util::Rng& rng) {
  Trial trial;
  trial.subject_id = subject.user_id;
  util::Rng timing_rng = rng.fork("timing");
  trial.entry = keystroke::generate_entry(pin, subject.timing,
                                          options.input_case, timing_rng);
  util::Rng trace_rng = rng.fork("trace");
  ppg::SimulationOptions sim_options;
  sim_options.wearing = options.wearing;
  sim_options.activity = options.activity;
  trial.trace = ppg::simulate_entry(subject, trial.entry, options.sensors,
                                    trace_rng, sim_options);
  if (options.with_accel) {
    util::Rng accel_rng = rng.fork("accel");
    trial.accel = ppg::simulate_accel(
        subject, trial.entry, keystroke::entry_duration_s(trial.entry),
        ppg::AccelOptions{}, accel_rng);
  }
  return trial;
}

std::vector<Trial> make_trials(const ppg::UserProfile& subject,
                               const keystroke::Pin& pin, std::size_t reps,
                               const TrialOptions& options, util::Rng& rng) {
  std::vector<Trial> out;
  out.reserve(reps);
  for (std::size_t r = 0; r < reps; ++r) {
    util::Rng trial_rng = rng.fork(0x7101a1ULL + r);
    out.push_back(make_trial(subject, pin, options, trial_rng));
  }
  return out;
}

std::vector<Trial> make_third_party_pool(const Population& population,
                                         std::size_t count,
                                         const TrialOptions& options,
                                         util::Rng& rng) {
  if (population.third_parties.empty()) {
    throw std::invalid_argument("make_third_party_pool: no third parties");
  }
  const std::vector<keystroke::Pin>& pins = keystroke::paper_pins();
  std::vector<Trial> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const ppg::UserProfile& donor =
        population.third_parties[i % population.third_parties.size()];
    const keystroke::Pin& pin =
        pins[(i / population.third_parties.size()) % pins.size()];
    util::Rng trial_rng = rng.fork(0x3d9a7ULL + i);
    out.push_back(make_trial(donor, pin, options, trial_rng));
  }
  return out;
}

}  // namespace p2auth::sim
