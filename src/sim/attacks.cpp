#include "sim/attacks.hpp"

#include <stdexcept>
#include <string>

namespace p2auth::sim {

keystroke::Pin random_pin(util::Rng& rng, std::size_t length) {
  std::string digits;
  digits.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    digits.push_back(static_cast<char>('0' + rng.uniform_int(10)));
  }
  return keystroke::Pin(digits);
}

Trial make_random_attack(const ppg::UserProfile& attacker,
                         const TrialOptions& options, util::Rng& rng) {
  util::Rng pin_rng = rng.fork("pin");
  const keystroke::Pin pin = random_pin(pin_rng);
  return make_trial(attacker, pin, options, rng);
}

Trial make_emulating_attack(const ppg::UserProfile& attacker,
                            const ppg::UserProfile& victim,
                            const keystroke::Pin& victim_pin,
                            const TrialOptions& options,
                            const EmulationOptions& emulation,
                            util::Rng& rng) {
  if (emulation.timing_fidelity < 0.0 || emulation.timing_fidelity > 1.0) {
    throw std::invalid_argument(
        "make_emulating_attack: timing_fidelity in [0, 1]");
  }
  // The attacker imitates the victim's observable behaviour (cadence) but
  // keeps their own physiology: blend the timing profiles only.
  ppg::UserProfile imitator = attacker;
  const double f = emulation.timing_fidelity;
  const keystroke::TimingProfile& vt = victim.timing;
  keystroke::TimingProfile& at = imitator.timing;
  at.mean_interval_s = (1.0 - f) * at.mean_interval_s + f * vt.mean_interval_s;
  at.cadence_jitter = (1.0 - f) * at.cadence_jitter + f * vt.cadence_jitter;
  at.keystroke_jitter_s =
      (1.0 - f) * at.keystroke_jitter_s + f * vt.keystroke_jitter_s;
  at.travel_s_per_key =
      (1.0 - f) * at.travel_s_per_key + f * vt.travel_s_per_key;
  return make_trial(imitator, victim_pin, options, rng);
}

std::vector<Trial> make_random_attacks(const Population& population,
                                       std::size_t count,
                                       const TrialOptions& options,
                                       util::Rng& rng) {
  if (population.attackers.empty()) {
    throw std::invalid_argument("make_random_attacks: no attackers");
  }
  std::vector<Trial> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const ppg::UserProfile& attacker =
        population.attackers[i % population.attackers.size()];
    util::Rng trial_rng = rng.fork(0xa77acc00ULL + i);
    out.push_back(make_random_attack(attacker, options, trial_rng));
  }
  return out;
}

std::vector<Trial> make_emulating_attacks(const Population& population,
                                          const ppg::UserProfile& victim,
                                          const keystroke::Pin& victim_pin,
                                          std::size_t count,
                                          const TrialOptions& options,
                                          util::Rng& rng) {
  if (population.attackers.empty()) {
    throw std::invalid_argument("make_emulating_attacks: no attackers");
  }
  std::vector<Trial> out;
  out.reserve(count);
  const EmulationOptions emulation{};
  for (std::size_t i = 0; i < count; ++i) {
    const ppg::UserProfile& attacker =
        population.attackers[i % population.attackers.size()];
    util::Rng trial_rng = rng.fork(0xe41a7e00ULL + i);
    out.push_back(make_emulating_attack(attacker, victim, victim_pin, options,
                                        emulation, trial_rng));
  }
  return out;
}

}  // namespace p2auth::sim
