// Dataset construction: trials, sessions and cohort datasets.
//
// A Trial is one PIN-entry attempt as the system sees it: the keystroke
// log from the phone plus the raw multi-channel PPG trace from the
// wearable (and optionally a simulated accelerometer trace for the
// Fig. 12 comparison).
#pragma once

#include <optional>
#include <vector>

#include "keystroke/events.hpp"
#include "keystroke/timing.hpp"
#include "ppg/accel_model.hpp"
#include "ppg/profile.hpp"
#include "ppg/simulator.hpp"
#include "sim/population.hpp"
#include "util/rng.hpp"

namespace p2auth::sim {

struct Trial {
  std::uint32_t subject_id = 0;  // who actually typed
  keystroke::EntryRecord entry;
  ppg::MultiChannelTrace trace;
  std::optional<ppg::AccelTrace> accel;
};

struct TrialOptions {
  ppg::SensorConfig sensors = ppg::SensorConfig::prototype_wristband();
  keystroke::InputCase input_case = keystroke::InputCase::kOneHanded;
  bool with_accel = false;
  ppg::WearingPosition wearing = ppg::WearingPosition::kInnerWrist;
  ppg::ActivityState activity = ppg::ActivityState::kStatic;
};

// Simulates one PIN entry by `subject`.
Trial make_trial(const ppg::UserProfile& subject, const keystroke::Pin& pin,
                 const TrialOptions& options, util::Rng& rng);

// `reps` repetitions of the same PIN by the same subject (one session).
std::vector<Trial> make_trials(const ppg::UserProfile& subject,
                               const keystroke::Pin& pin, std::size_t reps,
                               const TrialOptions& options, util::Rng& rng);

// Third-party negative-data pool: `count` one-handed entries drawn from
// the third-party cohort, cycling over the paper's PIN set so every digit
// key is represented.
std::vector<Trial> make_third_party_pool(const Population& population,
                                         std::size_t count,
                                         const TrialOptions& options,
                                         util::Rng& rng);

}  // namespace p2auth::sim
