// Scenario profiles: *honest* signal variation (daily-life robustness).
//
// sim/faults.hpp corrupts traces the way broken hardware does; this
// module perturbs them the way real life does.  The paper's 8-week pilot
// assumes resting users with fresh templates, but deployed PPG biometrics
// face (Yadav et al., Tang et al., see PAPERS.md):
//
//   * physiological state — elevated heart rate right after exertion and
//     the exponential recovery back to rest (scaled CardiacProfile
//     HR/HRV/amplitude);
//   * daily-life motion — walking or typing-on-the-move adds band-limited,
//     cadence-locked interference that couples into each channel through
//     the same optical path as the keystroke artifacts (ChannelCoupling);
//   * optical gain shifts — skin tone, ambient light and wearing-position
//     (strap looseness) changes scale and perturb the per-channel
//     couplings;
//   * template aging — week-indexed slow drift of the hand/tissue factors
//     and behavioural stability, mirroring the paper's 8-week pilot.
//
// Everything here is seeded and composable: one ScenarioProfile describes
// a full condition (state x motion x gain x week), a default-constructed
// profile is an exact no-op (bit-identical trials, no RNG draws), and
// aging is a deterministic function of (user, week) — the same user at
// the same week always has the same drifted physiology, which is what
// lets an adaptive re-enrollment policy (core/adapt.hpp) track it.
//
// Security framing: scenarios model *legitimate* variation.  They carry
// no attacker advantage by construction — they scale, shift or add
// interference to whatever physiology the subject already has — so the
// robustness bench (bench_scenarios) can assert the FAR-never-rises
// invariant across the whole state x scenario x week matrix.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>

#include "ppg/profile.hpp"
#include "ppg/sensor.hpp"
#include "ppg/simulator.hpp"
#include "sim/attacks.hpp"
#include "sim/dataset.hpp"
#include "util/rng.hpp"

namespace p2auth::sim {

// Physiological state of the wearer at entry time.
enum class PhysioState {
  kResting,     // the paper's evaluation condition
  kElevated,    // right after exertion (climbing stairs, a jog)
  kRecovering,  // `recovery_elapsed_s` into the exponential return to rest
};

// Daily-life motion overlay during the entry.
enum class MotionScenario {
  kNone,
  kWalkingEntry,     // typing while walking: full gait interference
  kTypingOnTheMove,  // strolling/shifting: weaker, lower-cadence sway
};

struct ScenarioProfile {
  std::string name = "rest";

  // --- physiological state ---
  PhysioState state = PhysioState::kResting;
  // Exertion intensity in [0, 1] (kElevated / kRecovering): 1 ~ heart
  // rate pushed ~70% above rest with strongly suppressed HRV.
  double exertion = 0.0;
  // Seconds since exercise stopped (kRecovering); the effective exertion
  // decays as exp(-elapsed / recovery_tau_s).
  double recovery_elapsed_s = 0.0;
  double recovery_tau_s = 90.0;

  // --- motion ---
  MotionScenario motion = MotionScenario::kNone;
  // Interference amplitude at motion intensity 1, in units of the
  // subject's typical keystroke-artifact amplitude.
  double motion_intensity = 1.0;

  // --- optical gain / wearing ---
  // Multiplies every channel's cardiac and artifact coupling: < 1 models
  // darker skin tone / low perfusion / strong ambient light stealing ADC
  // range; > 1 a high-gain re-calibration.  1 = no shift.
  double gain_scale = 1.0;
  // Wearing-position shift in [0, 1]: 0 = the enrolled placement, 1 = a
  // loosely re-donned strap (per-channel gain re-draws + extra artifact
  // propagation delay).
  double wearing_shift = 0.0;

  // --- template aging ---
  // Weeks since enrollment; drives the deterministic per-user drift of
  // HandFactors and behavioural stability (0 = fresh templates).
  std::size_t week = 0;
  // Weekly drift scale: lognormal sigma applied to each hand factor per
  // week (random walk), and the weekly stability decay factor.
  double aging_sigma = 0.045;
  double aging_stability_decay = 0.985;

  // True for a profile that perturbs nothing (the clean baseline): no
  // RNG draws are made and trials are bit-identical to make_trial.
  bool is_identity() const noexcept;
};

// --- catalogue -------------------------------------------------------------
// Named conditions used by bench_scenarios and run_experiment --scenario=.
ScenarioProfile rest_scenario();
ScenarioProfile elevated_scenario(double exertion = 0.8);
ScenarioProfile recovering_scenario(double elapsed_s = 120.0,
                                    double exertion = 0.8);
ScenarioProfile walking_entry_scenario();
ScenarioProfile typing_on_the_move_scenario();
ScenarioProfile gain_shift_scenario(double gain_scale = 0.55);
ScenarioProfile loose_strap_scenario(double shift = 0.7);

// Looks a catalogue profile up by its `name` ("rest", "elevated",
// "recovering", "walking", "typing-move", "gain-shift", "loose-strap");
// nullopt for unknown names.
std::optional<ScenarioProfile> scenario_by_name(std::string_view name);

// Returns `scenario` with the aging week set (composition helper).
ScenarioProfile aged(ScenarioProfile scenario, std::size_t week);

// --- application -----------------------------------------------------------

// Deterministic template aging: `base` drifted by `week` weeks of slow
// random-walk change to HandFactors plus stability decay.  Purely a
// function of (base.latent_seed, week, sigma): the same user at the same
// week always ages identically, across processes and call sites.
// week == 0 returns `base` unchanged.
ppg::UserProfile age_user(const ppg::UserProfile& base, std::size_t week,
                          double sigma = 0.045,
                          double stability_decay = 0.985);

// The subject as the scenario finds them: cardiac state scaled for
// exertion/recovery, couplings scaled/re-drawn for gain and wearing
// shifts, hand factors aged to `scenario.week`.  Draws only from `rng`
// (wearing re-draws); state scaling and aging are deterministic.
ppg::UserProfile scenario_user(const ppg::UserProfile& base,
                               const ScenarioProfile& scenario,
                               util::Rng& rng);

// Adds the scenario's band-limited, cadence-locked motion interference to
// `trace` in place.  The interference is one physical arm motion seen by
// every channel, scaled per channel by the subject's artifact coupling
// (|ChannelCoupling::artifact_gain|) — motion reaches the photodiode
// through the same tissue path as the keystroke artifacts.  No-op for
// MotionScenario::kNone.
void add_motion_interference(ppg::MultiChannelTrace& trace,
                             const ppg::UserProfile& subject,
                             const ppg::SensorConfig& sensors,
                             const ScenarioProfile& scenario, util::Rng& rng);

// One PIN entry under the scenario: ages + state-shifts the subject,
// simulates the entry, overlays motion interference.  For an identity
// profile this is byte-for-byte make_trial (same draws from `rng`), so
// existing seeds reproduce exactly.
Trial make_scenario_trial(const ppg::UserProfile& subject,
                          const keystroke::Pin& pin,
                          const TrialOptions& options,
                          const ScenarioProfile& scenario, util::Rng& rng);

// Attack counterparts: the *attacker* lives in the same environment, so
// the full scenario (state, motion, gain, week) applies to the attacker's
// own physiology — it perturbs whatever physiology they already have and
// by construction carries zero information about the victim, which is
// what lets bench_scenarios assert FAR-never-rises across the matrix.
// Identity profiles are byte-for-byte the plain attack generators.
Trial make_scenario_random_attack(const ppg::UserProfile& attacker,
                                  const TrialOptions& options,
                                  const ScenarioProfile& scenario,
                                  util::Rng& rng);
Trial make_scenario_emulating_attack(const ppg::UserProfile& attacker,
                                     const ppg::UserProfile& victim,
                                     const keystroke::Pin& victim_pin,
                                     const TrialOptions& options,
                                     const EmulationOptions& emulation,
                                     const ScenarioProfile& scenario,
                                     util::Rng& rng);

}  // namespace p2auth::sim
