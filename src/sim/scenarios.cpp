#include "sim/scenarios.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "ppg/artifact_model.hpp"

namespace p2auth::sim {

namespace {

constexpr double kTwoPi = 6.28318530717958647692;

// Effective exertion after recovery decay (0 when resting).
double effective_exertion(const ScenarioProfile& sc) noexcept {
  switch (sc.state) {
    case PhysioState::kResting:
      return 0.0;
    case PhysioState::kElevated:
      return std::clamp(sc.exertion, 0.0, 1.0);
    case PhysioState::kRecovering: {
      const double tau = std::max(1e-6, sc.recovery_tau_s);
      return std::clamp(sc.exertion, 0.0, 1.0) *
             std::exp(-std::max(0.0, sc.recovery_elapsed_s) / tau);
    }
  }
  return 0.0;
}

// Scales the cardiac profile for exertion level `e` in [0, 1]:
// sympathetic drive raises the rate and stroke amplitude, suppresses
// beat-to-beat variability, speeds respiration, and vasodilation damps
// the reflected (dicrotic) wave.
void apply_physio_state(ppg::CardiacProfile& cardiac, double e) {
  if (e <= 0.0) return;
  cardiac.heart_rate_bpm =
      std::min(185.0, cardiac.heart_rate_bpm * (1.0 + 0.70 * e));
  cardiac.hrv_fraction *= 1.0 - 0.65 * e;
  cardiac.respiration_hz *= 1.0 + 0.80 * e;
  cardiac.systolic_amp *= 1.0 + 0.20 * e;
  cardiac.dicrotic_amp *= 1.0 - 0.45 * e;
  cardiac.diastolic_decay *= 1.0 + 0.30 * e;
}

}  // namespace

bool ScenarioProfile::is_identity() const noexcept {
  return effective_exertion(*this) == 0.0 &&
         motion == MotionScenario::kNone && gain_scale == 1.0 &&
         wearing_shift == 0.0 && week == 0;
}

ScenarioProfile rest_scenario() { return ScenarioProfile{}; }

ScenarioProfile elevated_scenario(double exertion) {
  ScenarioProfile sc;
  sc.name = "elevated";
  sc.state = PhysioState::kElevated;
  sc.exertion = exertion;
  return sc;
}

ScenarioProfile recovering_scenario(double elapsed_s, double exertion) {
  ScenarioProfile sc;
  sc.name = "recovering";
  sc.state = PhysioState::kRecovering;
  sc.exertion = exertion;
  sc.recovery_elapsed_s = elapsed_s;
  return sc;
}

ScenarioProfile walking_entry_scenario() {
  ScenarioProfile sc;
  sc.name = "walking";
  sc.motion = MotionScenario::kWalkingEntry;
  sc.motion_intensity = 1.0;
  return sc;
}

ScenarioProfile typing_on_the_move_scenario() {
  ScenarioProfile sc;
  sc.name = "typing-move";
  sc.motion = MotionScenario::kTypingOnTheMove;
  sc.motion_intensity = 0.6;
  return sc;
}

ScenarioProfile gain_shift_scenario(double gain_scale) {
  ScenarioProfile sc;
  sc.name = "gain-shift";
  sc.gain_scale = gain_scale;
  return sc;
}

ScenarioProfile loose_strap_scenario(double shift) {
  ScenarioProfile sc;
  sc.name = "loose-strap";
  sc.wearing_shift = shift;
  return sc;
}

std::optional<ScenarioProfile> scenario_by_name(std::string_view name) {
  if (name == "rest") return rest_scenario();
  if (name == "elevated") return elevated_scenario();
  if (name == "recovering") return recovering_scenario();
  if (name == "walking") return walking_entry_scenario();
  if (name == "typing-move") return typing_on_the_move_scenario();
  if (name == "gain-shift") return gain_shift_scenario();
  if (name == "loose-strap") return loose_strap_scenario();
  return std::nullopt;
}

ScenarioProfile aged(ScenarioProfile scenario, std::size_t week) {
  scenario.week = week;
  return scenario;
}

ppg::UserProfile age_user(const ppg::UserProfile& base, std::size_t week,
                          double sigma, double stability_decay) {
  if (week == 0) return base;
  ppg::UserProfile aged = base;
  // The stream is keyed only by the user's latent seed: week N's
  // physiology is week N-1's plus one more deterministic step, so every
  // call site (enrollment-time aging, test trials, the adaptation bench)
  // sees the same drifted user.
  util::Rng walk(base.latent_seed ^ 0xa61a5eedULL,
                 util::fnv1a("template-aging"));
  // Aging is a slow *systematic* change — skin properties, strap habits,
  // typing force — not a mean-zero wander: the paper's 8-week pilot
  // shows accuracy degrading monotonically with time since enrollment.
  // Each user therefore draws a fixed per-parameter drift direction
  // once, and every week steps along it with small week-to-week jitter.
  const double dir = 0.6 * sigma;  // per-week systematic component
  const double jit = 0.5 * sigma;  // per-week zero-mean jitter
  const double d_amp = walk.normal(0.0, dir);
  const double d_rise = walk.normal(0.0, dir);
  const double d_decay = walk.normal(0.0, dir);
  const double d_rebound = walk.normal(0.0, dir);
  const double d_latency = walk.normal(0.0, 0.6 * 0.018 * sigma / 0.045);
  const double d_osc = walk.normal(0.0, 0.6 * 0.6 * sigma);
  const double d_phase = walk.normal(0.0, 0.6 * 2.5 * sigma);
  const double d_asym = walk.normal(0.0, 0.6 * 0.8 * sigma);
  ppg::HandFactors& h = aged.hand;
  for (std::size_t w = 0; w < week; ++w) {
    // Fixed draw count per week: weeks compose as one more drift step.
    h.amplitude_scale =
        std::max(0.35, h.amplitude_scale * walk.lognormal(d_amp, jit));
    h.rise_scale = std::max(0.3, h.rise_scale * walk.lognormal(d_rise, jit));
    h.decay_scale =
        std::max(0.3, h.decay_scale * walk.lognormal(d_decay, jit));
    h.rebound_scale =
        std::max(0.2, h.rebound_scale * walk.lognormal(d_rebound, jit));
    h.latency_s = std::clamp(
        h.latency_s + d_latency + walk.normal(0.0, 0.5 * 0.018 * sigma / 0.045),
        0.01, 0.15);
    h.osc_freq_hz = std::clamp(
        h.osc_freq_hz * walk.lognormal(d_osc, 0.5 * 0.6 * sigma), 1.5, 9.0);
    h.osc_phase += d_phase + walk.normal(0.0, 0.5 * 2.5 * sigma);
    h.asymmetry = std::clamp(
        h.asymmetry + d_asym + walk.normal(0.0, 0.5 * 0.8 * sigma), -1.0, 1.0);
    aged.stability = std::clamp(aged.stability * stability_decay, 0.40, 0.98);
  }
  return aged;
}

ppg::UserProfile scenario_user(const ppg::UserProfile& base,
                               const ScenarioProfile& scenario,
                               util::Rng& rng) {
  ppg::UserProfile subject =
      age_user(base, scenario.week, scenario.aging_sigma,
               scenario.aging_stability_decay);
  apply_physio_state(subject.cardiac, effective_exertion(scenario));

  if (scenario.gain_scale != 1.0) {
    for (std::size_t c = 0; c < ppg::kMaxChannels; ++c) {
      subject.coupling[c].cardiac_gain *= scenario.gain_scale;
      subject.coupling[c].artifact_gain *= scenario.gain_scale;
    }
  }
  if (scenario.wearing_shift > 0.0) {
    // A re-donned strap: every channel's optical coupling re-draws around
    // its enrolled value, and the press-to-sensor propagation path
    // lengthens a little.  Stochastic per trial (each re-donning differs).
    const double w = std::min(scenario.wearing_shift, 1.0);
    for (std::size_t c = 0; c < ppg::kMaxChannels; ++c) {
      subject.coupling[c].artifact_gain *= rng.lognormal(0.0, 0.55 * w);
      subject.coupling[c].cardiac_gain *= rng.lognormal(0.0, 0.20 * w);
      subject.coupling[c].artifact_delay_s += rng.uniform(0.0, 0.025 * w);
    }
  }
  return subject;
}

void add_motion_interference(ppg::MultiChannelTrace& trace,
                             const ppg::UserProfile& subject,
                             const ppg::SensorConfig& sensors,
                             const ScenarioProfile& scenario,
                             util::Rng& rng) {
  if (scenario.motion == MotionScenario::kNone) return;
  const std::size_t n = trace.length();
  if (n == 0) return;
  if (sensors.channels.size() < trace.num_channels()) {
    throw std::invalid_argument(
        "add_motion_interference: sensor config narrower than trace");
  }

  const bool walking = scenario.motion == MotionScenario::kWalkingEntry;
  // Step cadence (walking) vs a slower body sway (shifting on the move).
  const double cadence_hz =
      walking ? rng.uniform(1.6, 2.1) : rng.uniform(0.9, 1.3);
  // Reference amplitude: the subject's typical keystroke-artifact height,
  // so intensity 1 means "interference the size of the signal" — enough
  // to break authentication without ever *being* the signal.
  const double reference =
      std::abs(ppg::artifact_params(subject, '5').amplitude);
  const double amp = scenario.motion_intensity * reference;
  // Harmonic mix: walking has a strong per-step second harmonic; sway is
  // nearly pure fundamental.  Band-limited by construction (three
  // cadence-locked tones under a slow amplitude envelope, no broadband
  // component).
  const double h1 = walking ? 1.00 : 0.55;
  const double h2 = walking ? 0.55 : 0.15;
  const double h3 = walking ? 0.20 : 0.0;
  const double p1 = rng.uniform(0.0, kTwoPi);
  const double p2 = rng.uniform(0.0, kTwoPi);
  const double p3 = rng.uniform(0.0, kTwoPi);
  const double env_hz = rng.uniform(0.10, 0.22);
  const double env_phase = rng.uniform(0.0, kTwoPi);

  // One physical motion, rendered once and coupled per channel.
  std::vector<double> motion(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / trace.rate_hz;
    const double envelope =
        1.0 + 0.35 * std::sin(kTwoPi * env_hz * t + env_phase);
    motion[i] = amp * envelope *
                (h1 * std::sin(kTwoPi * cadence_hz * t + p1) +
                 h2 * std::sin(kTwoPi * 2.0 * cadence_hz * t + p2) +
                 h3 * std::sin(kTwoPi * 3.0 * cadence_hz * t + p3));
  }
  for (std::size_t c = 0; c < trace.num_channels(); ++c) {
    const std::size_t ci = sensors.channels[c].coupling_index;
    if (ci >= ppg::kMaxChannels) {
      throw std::invalid_argument(
          "add_motion_interference: bad coupling index");
    }
    // Motion reaches the photodiode through the same tissue path as the
    // keystroke artifacts: channels that couple artifacts strongly also
    // couple motion strongly (magnitude only — motion has no per-user
    // sign structure to leak).
    const double gain = std::abs(subject.coupling[ci].artifact_gain);
    std::vector<double>& ch = trace.channels[c];
    for (std::size_t i = 0; i < ch.size() && i < n; ++i) {
      ch[i] += gain * motion[i];
    }
  }
}

Trial make_scenario_trial(const ppg::UserProfile& subject,
                          const keystroke::Pin& pin,
                          const TrialOptions& options,
                          const ScenarioProfile& scenario, util::Rng& rng) {
  // Identity profiles take the exact make_trial path — same draws from
  // `rng`, bit-identical trials — so a scenario-parameterised harness
  // with the default profile reproduces every pre-scenario seed.
  if (scenario.is_identity()) return make_trial(subject, pin, options, rng);

  util::Rng scenario_rng = rng.fork("scenario");
  const ppg::UserProfile shifted =
      scenario_user(subject, scenario, scenario_rng);
  Trial trial = make_trial(shifted, pin, options, rng);
  trial.subject_id = subject.user_id;
  add_motion_interference(trial.trace, shifted, options.sensors, scenario,
                          scenario_rng);
  return trial;
}

Trial make_scenario_random_attack(const ppg::UserProfile& attacker,
                                  const TrialOptions& options,
                                  const ScenarioProfile& scenario,
                                  util::Rng& rng) {
  if (scenario.is_identity()) {
    return make_random_attack(attacker, options, rng);
  }
  util::Rng scenario_rng = rng.fork("scenario");
  const ppg::UserProfile shifted =
      scenario_user(attacker, scenario, scenario_rng);
  Trial trial = make_random_attack(shifted, options, rng);
  add_motion_interference(trial.trace, shifted, options.sensors, scenario,
                          scenario_rng);
  return trial;
}

Trial make_scenario_emulating_attack(const ppg::UserProfile& attacker,
                                     const ppg::UserProfile& victim,
                                     const keystroke::Pin& victim_pin,
                                     const TrialOptions& options,
                                     const EmulationOptions& emulation,
                                     const ScenarioProfile& scenario,
                                     util::Rng& rng) {
  if (scenario.is_identity()) {
    return make_emulating_attack(attacker, victim, victim_pin, options,
                                 emulation, rng);
  }
  util::Rng scenario_rng = rng.fork("scenario");
  // The scenario shifts only the attacker's physiology; the victim enters
  // solely through the (public, shoulder-surfable) timing profile.
  const ppg::UserProfile shifted =
      scenario_user(attacker, scenario, scenario_rng);
  Trial trial = make_emulating_attack(shifted, victim, victim_pin, options,
                                      emulation, rng);
  add_motion_interference(trial.trace, shifted, options.sensors, scenario,
                          scenario_rng);
  return trial;
}

}  // namespace p2auth::sim
