#include "sim/faults.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

namespace p2auth::sim {

namespace {

struct Range {
  double lo = 0.0;
  double hi = 0.0;
  double span() const noexcept { return hi - lo; }
};

Range finite_range(const std::vector<double>& ch) {
  Range r{std::numeric_limits<double>::infinity(),
          -std::numeric_limits<double>::infinity()};
  for (const double v : ch) {
    if (!std::isfinite(v)) continue;
    r.lo = std::min(r.lo, v);
    r.hi = std::max(r.hi, v);
  }
  if (r.lo > r.hi) r = {0.0, 0.0};  // nothing finite
  return r;
}

}  // namespace

FaultPlan::FaultPlan(FaultConfig config, util::Rng rng)
    : config_(config), rng_(rng) {
  config_.severity = std::clamp(config_.severity, 0.0, 1.0);
}

FaultLog FaultPlan::apply(ppg::MultiChannelTrace& trace,
                          keystroke::EntryRecord& entry) {
  FaultLog log;
  const double s = config_.severity;
  if (s <= 0.0) return log;
  const std::size_t n = trace.length();
  const double rate = trace.rate_hz;

  for (auto& ch : trace.channels) {
    if (ch.size() != n || n == 0) continue;  // ragged/empty: leave alone
    const Range range = finite_range(ch);

    // Transient dropout: the sensor reads 0 for a span.
    if (rng_.uniform() < s * config_.dropout_prob) {
      const auto span = static_cast<std::size_t>(
          std::max(1.0, s * config_.dropout_s * rate));
      const std::size_t start = rng_.uniform_int(
          static_cast<std::uint32_t>(std::max<std::size_t>(1, n - 1)));
      for (std::size_t i = start; i < std::min(n, start + span); ++i) {
        ch[i] = 0.0;
      }
      ++log.dropouts;
    }

    // Hard failure: hold the last value from a random instant onward.
    if (rng_.uniform() < s * config_.flatline_prob) {
      const std::size_t start =
          rng_.uniform_int(static_cast<std::uint32_t>(n));
      const double held = std::isfinite(ch[start]) ? ch[start] : 0.0;
      for (std::size_t i = start; i < n; ++i) ch[i] = held;
      ++log.flatlines;
    }

    // Saturation: clip symmetrically into the amplitude range.
    if (range.span() > 0.0 &&
        rng_.uniform() < s * config_.saturation_prob) {
      const double cut = 0.5 * s * config_.saturation_depth * range.span();
      const double lo = range.lo + cut, hi = range.hi - cut;
      for (double& v : ch) {
        if (std::isfinite(v)) v = std::clamp(v, lo, hi);
      }
      ++log.saturated_channels;
    }

    // Non-finite burst (flaky sensor link).
    if (rng_.uniform() < s * config_.nan_burst_prob) {
      const auto span = static_cast<std::size_t>(
          std::max(1.0, s * config_.nan_burst_s * rate));
      const std::size_t start = rng_.uniform_int(
          static_cast<std::uint32_t>(std::max<std::size_t>(1, n - 1)));
      for (std::size_t i = start; i < std::min(n, start + span); ++i) {
        ch[i] = std::numeric_limits<double>::quiet_NaN();
      }
      ++log.nan_bursts;
    }

    // Impulsive motion spikes.
    const double duration_s = static_cast<double>(n) / rate;
    const auto spikes = static_cast<std::size_t>(
        std::floor(s * config_.spike_rate_hz * duration_s));
    const double amplitude =
        config_.spike_gain * std::max(range.span(), 1e-3);
    for (std::size_t k = 0; k < spikes; ++k) {
      const std::size_t i =
          rng_.uniform_int(static_cast<std::uint32_t>(n));
      if (std::isfinite(ch[i])) {
        ch[i] += (rng_.uniform() < 0.5 ? -1.0 : 1.0) * amplitude;
      }
      ++log.spikes;
    }
  }

  // Watch<->phone clock skew: one offset for the whole entry (the two
  // devices disagree by a per-session constant).  A negative draw larger
  // than the earliest timestamp would pin early events at 0 and silently
  // shrink the offset those events actually received — so the draw is
  // bounded by the earliest timestamp instead, keeping the shift a true
  // per-session constant, and the log records the offset that was
  // actually applied rather than the raw draw.
  if (config_.clock_skew_s > 0.0 && !entry.events.empty()) {
    double skew = rng_.uniform(-1.0, 1.0) * s * config_.clock_skew_s;
    double earliest = std::numeric_limits<double>::infinity();
    for (const auto& e : entry.events) {
      earliest = std::min(earliest, e.recorded_time_s);
    }
    skew = std::max(skew, -earliest);
    for (auto& e : entry.events) {
      e.recorded_time_s += skew;
    }
    log.clock_skew_s = skew;
  }

  // Duplicated log event: a buggy IME reports one keystroke twice, key
  // included — the derived PIN gains the digit too.
  if (!entry.events.empty() &&
      rng_.uniform() < s * config_.duplicate_event_prob) {
    const std::size_t j = rng_.uniform_int(
        static_cast<std::uint32_t>(entry.events.size()));
    entry.events.insert(entry.events.begin() + static_cast<std::ptrdiff_t>(j),
                        entry.events[j]);
    std::string digits = entry.pin.digits();
    if (j < digits.size()) {
      digits.insert(digits.begin() + static_cast<std::ptrdiff_t>(j),
                    digits[j]);
      entry.pin = keystroke::Pin(digits);
    }
    ++log.duplicated_events;
  }

  // Out-of-order delivery: adjacent events swap recorded timestamps (the
  // keys arrive in typed order but the timeline is jumbled).
  if (entry.events.size() >= 2 &&
      rng_.uniform() < s * config_.swap_event_prob) {
    const std::size_t j = rng_.uniform_int(
        static_cast<std::uint32_t>(entry.events.size() - 1));
    std::swap(entry.events[j].recorded_time_s,
              entry.events[j + 1].recorded_time_s);
    ++log.swapped_events;
  }

  return log;
}

}  // namespace p2auth::sim
