// Attack generators (paper section IV-D).
//
// Random attack (RA): the attacker knows nothing about the victim; they
// type a random PIN on the victim's phone wearing the victim's watch.
//
// Emulating attack (EA): the attacker shoulder-surfed the victim's PIN and
// keystroke rhythm; they type the correct PIN, imitating the victim's
// cadence (their timing profile is blended toward the victim's), but the
// PPG artifacts are necessarily the attacker's own — physiology cannot be
// imitated, which is the second factor's whole point.
#pragma once

#include "sim/dataset.hpp"

namespace p2auth::sim {

// One random-attack trial: `attacker` types a uniformly random 4-digit
// PIN.
Trial make_random_attack(const ppg::UserProfile& attacker,
                         const TrialOptions& options, util::Rng& rng);

struct EmulationOptions {
  // How closely the attacker matches the victim's cadence: 0 = not at all
  // (their own timing), 1 = perfectly.  Shoulder-surfing gives good but
  // imperfect imitation.
  double timing_fidelity = 0.8;
};

// One emulating-attack trial: `attacker` types the victim's PIN with
// imitated timing.
Trial make_emulating_attack(const ppg::UserProfile& attacker,
                            const ppg::UserProfile& victim,
                            const keystroke::Pin& victim_pin,
                            const TrialOptions& options,
                            const EmulationOptions& emulation,
                            util::Rng& rng);

// A batch of `count` random attacks cycling over the attacker cohort
// (paper: 150 random entries from 4 attackers).
std::vector<Trial> make_random_attacks(const Population& population,
                                       std::size_t count,
                                       const TrialOptions& options,
                                       util::Rng& rng);

// A batch of emulating attacks against one victim.
std::vector<Trial> make_emulating_attacks(const Population& population,
                                          const ppg::UserProfile& victim,
                                          const keystroke::Pin& victim_pin,
                                          std::size_t count,
                                          const TrialOptions& options,
                                          util::Rng& rng);

// Uniformly random 4-digit PIN.
keystroke::Pin random_pin(util::Rng& rng, std::size_t length = 4);

}  // namespace p2auth::sim
