// Multi-tenant authentication service: a request-level front end over
// the per-user decision pipeline.
//
// Architecture (DESIGN.md "Service layer" has the full story):
//
//   submit() ──▶ bounded admission queue ──▶ worker threads
//                (full ⇒ typed kOverloaded)      │
//                                                ▼  batch of up to
//                                                   max_batch requests
//        shard[h(name) % N]: mutex + LRU of materialized models
//                │ miss ⇒ ModelSource::load (mmap materialize)
//                ▼
//        prepare_authentication per request (PIN, preprocess, gating,
//        waveform extraction) — then all scoring units of the batch are
//        grouped by target model and pushed through ONE
//        WaveformModel::decisions call per model (one transform_batch
//        under the hood), then finish_authentication integrates votes
//        per request.  WaveformModel::decisions is pinned bit-identical
//        to the per-waveform scoring loop, so a batched service decision
//        equals a serial core::authenticate replay, bit for bit — the
//        harness tests and bench_service enforce this with checksums.
//
// Shutdown: stop() refuses new submissions (immediate kShuttingDown
// responses), closes the queue, and joins the workers after they drain
// every admitted request — each request is answered exactly once.
#pragma once

#include <cstddef>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/authenticator.hpp"
#include "service/source.hpp"

namespace p2auth::service {

// Transport-level outcome of one request.  kOk means a decision was
// made (accept or reject lives in AuthResponse::result); the others are
// service-level refusals that never reached the pipeline.
enum class RequestStatus : std::uint8_t {
  kOk,
  kUnknownUser,    // name not present in any model store
  kOverloaded,     // admission queue full — shed, not queued
  kShuttingDown,   // submitted after stop()
};

const char* to_string(RequestStatus status) noexcept;

struct ServiceOptions {
  // Shard count for the user-model registry (routing is deterministic:
  // fnv1a64(name) % shards).
  std::size_t shards = 4;
  // Materialized-model LRU capacity per shard (0 = no caching; every
  // request re-materializes).
  std::size_t lru_capacity = 128;
  // Admission-queue bound; a full queue sheds with kOverloaded.
  std::size_t queue_capacity = 1024;
  // Worker threads (0 = util::resolve_threads default).
  std::size_t workers = 2;
  // Upper bound on requests decided in one scoring batch.
  std::size_t max_batch = 16;
  // Thread budget for the shared transform_batch inside a batch (1 =
  // inline on the worker; >1 fans the tiles out over the shared pool).
  std::size_t batch_threads = 1;
  core::AuthOptions auth{};
};

struct AuthRequest {
  std::uint64_t request_id = 0;
  std::string user;
  core::Observation observation;
};

struct AuthResponse {
  std::uint64_t request_id = 0;
  RequestStatus status = RequestStatus::kOk;
  // The decision, valid when status == kOk.
  core::AuthResult result;
  // Service-side timings (microseconds; decision state excludes them).
  double queue_us = 0.0;    // admission -> dequeue
  double service_us = 0.0;  // dequeue -> decision
  // How many requests shared this scoring batch.
  std::size_t batch_size = 0;
};

// Lifetime counters (monotonic; snapshot via AuthService::stats()).
struct ServiceStats {
  std::uint64_t submitted = 0;    // submit() calls
  std::uint64_t admitted = 0;     // entered the queue
  std::uint64_t overloaded = 0;   // shed at admission
  std::uint64_t shutdown_rejects = 0;  // submitted after stop()
  std::uint64_t completed = 0;    // decisions delivered (status kOk)
  std::uint64_t unknown_user = 0;
  std::uint64_t accepted = 0;     // of completed
  std::uint64_t lru_hits = 0;
  std::uint64_t lru_misses = 0;   // materializations
  std::uint64_t evictions = 0;
  std::uint64_t batches = 0;      // scoring batches processed
  std::uint64_t batched_requests = 0;  // requests in multi-request batches
  std::uint64_t max_batch = 0;    // largest batch observed
};

class AuthService {
 public:
  // The service keeps `source` alive for its own lifetime.  Throws
  // std::invalid_argument on zero shards or queue capacity.
  AuthService(std::shared_ptr<ModelSource> source,
              ServiceOptions options = {});
  ~AuthService();  // stop()s if still running

  AuthService(const AuthService&) = delete;
  AuthService& operator=(const AuthService&) = delete;

  // Admits one request.  NEVER blocks: when the queue is full the
  // returned future is already satisfied with kOverloaded; after stop()
  // with kShuttingDown.  Every future is eventually satisfied exactly
  // once.
  std::future<AuthResponse> submit(AuthRequest request);

  // Graceful shutdown: refuses new submissions, drains every admitted
  // request, joins the workers.  Idempotent; safe from any thread.
  void stop();
  bool stopped() const noexcept;

  ServiceStats stats() const;
  const ServiceOptions& options() const noexcept { return options_; }

  // Deterministic shard routing, exposed so tests can pin it.
  std::size_t shard_of(std::string_view user) const noexcept;
  static std::uint64_t route_hash(std::string_view user) noexcept;

 private:
  struct Pending;
  struct Shard;
  struct Impl;
  std::unique_ptr<Impl> impl_;
  ServiceOptions options_;
};

}  // namespace p2auth::service
