#include "service/service.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "obs/audit.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "service/lru.hpp"
#include "service/queue.hpp"
#include "util/thread_pool.hpp"

namespace p2auth::service {

const char* to_string(RequestStatus status) noexcept {
  switch (status) {
    case RequestStatus::kOk: return "ok";
    case RequestStatus::kUnknownUser: return "unknown_user";
    case RequestStatus::kOverloaded: return "overloaded";
    case RequestStatus::kShuttingDown: return "shutting_down";
  }
  return "unknown";
}

struct AuthService::Pending {
  AuthRequest request;
  std::promise<AuthResponse> promise;
  std::int64_t enqueue_us = 0;
};

struct AuthService::Shard {
  std::mutex mu;
  LruCache<std::shared_ptr<const core::EnrolledUser>> cache;

  explicit Shard(std::size_t capacity) : cache(capacity) {}
};

struct AuthService::Impl {
  std::shared_ptr<ModelSource> source;
  ServiceOptions options;
  BoundedQueue<Pending> queue;
  std::vector<std::unique_ptr<Shard>> shards;
  std::vector<std::thread> workers;
  std::atomic<bool> accepting{true};
  std::once_flag stop_once;
  std::atomic<bool> stopped{false};

  // Stats (relaxed atomics: monotonic counters, no ordering needed).
  std::atomic<std::uint64_t> submitted{0}, admitted{0}, overloaded{0},
      shutdown_rejects{0}, completed{0}, unknown_user{0}, accepted{0},
      lru_hits{0}, lru_misses{0}, batches{0}, batched_requests{0},
      max_batch{0};

  Impl(std::shared_ptr<ModelSource> src, const ServiceOptions& opts)
      : source(std::move(src)), options(opts),
        queue(opts.queue_capacity) {
    shards.reserve(opts.shards);
    for (std::size_t i = 0; i < opts.shards; ++i) {
      shards.push_back(std::make_unique<Shard>(opts.lru_capacity));
    }
  }

  // Resolves a user through the shard cache, materializing from the
  // source on a miss.  nullptr = unknown name.  Concurrent misses for
  // one name may materialize twice; the second insert wins and both
  // copies decide identically (materialization is deterministic).
  std::shared_ptr<const core::EnrolledUser> resolve(std::string_view name) {
    Shard& shard = *shards[shard_index(name)];
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      if (auto* hit = shard.cache.find(name)) {
        lru_hits.fetch_add(1, std::memory_order_relaxed);
        return *hit;
      }
    }
    std::optional<core::EnrolledUser> loaded = source->load(name);
    if (!loaded.has_value()) return nullptr;
    lru_misses.fetch_add(1, std::memory_order_relaxed);
    obs::add_counter("service.lru.miss");
    auto model =
        std::make_shared<const core::EnrolledUser>(std::move(*loaded));
    std::lock_guard<std::mutex> lock(shard.mu);
    // Re-check: if a racing miss inserted meanwhile, adopt the cached
    // pointer so one canonical model per name feeds batch grouping.
    if (auto* hit = shard.cache.find(name)) return *hit;
    shard.cache.insert(std::string(name), model);
    return model;
  }

  std::size_t shard_index(std::string_view name) const noexcept {
    return static_cast<std::size_t>(route_hash(name) %
                                    static_cast<std::uint64_t>(shards.size()));
  }

  std::uint64_t cache_evictions() const {
    std::uint64_t total = 0;
    for (const auto& shard : shards) {
      std::lock_guard<std::mutex> lock(shard->mu);
      total += shard->cache.evictions();
    }
    return total;
  }

  void worker_loop() {
    std::vector<Pending> batch;
    while (queue.pop_batch(options.max_batch, batch)) {
      process_batch(batch);
    }
    obs::flush_thread_metrics();
  }

  void process_batch(std::vector<Pending>& batch);
};

void AuthService::Impl::process_batch(std::vector<Pending>& batch) {
  // One request mid-flight through this batch.
  struct Slot {
    Pending* pending = nullptr;
    std::shared_ptr<const core::EnrolledUser> user;
    core::PreparedAuth prepared;
    std::vector<double> decisions;  // unit order
    std::int64_t start_us = 0;      // dequeue time (service_us anchor)
    bool open = false;              // still needs finish + respond
  };

  const obs::Span span("service.batch", "service");
  const bool timed = obs::enabled() || obs::audit_recorder() != nullptr;
  batches.fetch_add(1, std::memory_order_relaxed);
  obs::add_counter("service.batches");
  if (batch.size() > 1) {
    batched_requests.fetch_add(batch.size(), std::memory_order_relaxed);
  }
  std::uint64_t seen = max_batch.load(std::memory_order_relaxed);
  while (batch.size() > seen &&
         !max_batch.compare_exchange_weak(seen, batch.size(),
                                          std::memory_order_relaxed)) {
  }

  // --- Per-request phases: resolve + prepare. -------------------------
  std::vector<Slot> slots(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    Slot& slot = slots[i];
    slot.pending = &batch[i];
    slot.start_us = obs::now_us();
    AuthResponse response;
    response.request_id = batch[i].request.request_id;
    response.queue_us =
        static_cast<double>(slot.start_us - batch[i].enqueue_us);
    obs::observe_latency_us("service.queue_us", response.queue_us);

    slot.user = resolve(batch[i].request.user);
    if (slot.user == nullptr) {
      unknown_user.fetch_add(1, std::memory_order_relaxed);
      obs::add_counter("service.unknown_user");
      response.status = RequestStatus::kUnknownUser;
      response.service_us =
          static_cast<double>(obs::now_us() - slot.start_us);
      batch[i].promise.set_value(std::move(response));
      continue;
    }
    try {
      slot.prepared = core::prepare_authentication(
          *slot.user, batch[i].request.observation, options.auth);
    } catch (const std::exception&) {
      // A structurally invalid observation (empty trace, ragged
      // channels) throws in preprocessing; the service answers it like
      // the pipeline answers an inconsistent keystroke log.
      slot.prepared = core::PreparedAuth{};
      slot.prepared.decided = true;
      slot.prepared.result.reason = core::RejectReason::kMalformedEntry;
    }
    slot.decisions.assign(slot.prepared.units.size(), 0.0);
    slot.open = true;
  }

  // --- Shared scoring: group every unit in the batch by target model
  // and push each group through one WaveformModel::decisions call (one
  // transform_batch per model).  Grouping order is first-appearance, so
  // the batch composition — not pointer values — drives the layout;
  // either way each waveform's features are computed independently and
  // bit-identically to the serial loop.
  struct Group {
    const core::WaveformModel* model = nullptr;
    std::vector<std::vector<core::Series>> waveforms;
    std::vector<std::pair<std::size_t, std::size_t>> origin;  // slot, unit
  };
  std::vector<Group> groups;
  std::unordered_map<const core::WaveformModel*, std::size_t> group_of;
  for (std::size_t s = 0; s < slots.size(); ++s) {
    if (!slots[s].open) continue;
    auto& units = slots[s].prepared.units;
    for (std::size_t u = 0; u < units.size(); ++u) {
      const auto [it, fresh] =
          group_of.try_emplace(units[u].model, groups.size());
      if (fresh) {
        groups.emplace_back();
        groups.back().model = units[u].model;
      }
      Group& g = groups[it->second];
      g.waveforms.push_back(std::move(units[u].waveform));
      g.origin.emplace_back(s, u);
    }
  }
  for (Group& g : groups) {
    const linalg::Vector scores =
        g.model->decisions(g.waveforms, options.batch_threads);
    for (std::size_t i = 0; i < g.origin.size(); ++i) {
      slots[g.origin[i].first].decisions[g.origin[i].second] = scores[i];
    }
  }

  // --- Per-request integration + response. ----------------------------
  for (Slot& slot : slots) {
    if (!slot.open) continue;
    AuthResponse response;
    response.request_id = slot.pending->request.request_id;
    response.queue_us =
        static_cast<double>(slot.start_us - slot.pending->enqueue_us);
    response.batch_size = batch.size();
    core::AuthResult result = core::finish_authentication(
        std::move(slot.prepared), slot.decisions);
    if (timed) {
      // Same staging as core::authenticate; in batched mode model_us
      // covers the shared scoring section's wall time.
      result.latencies.total_us =
          static_cast<double>(obs::now_us() - slot.start_us);
      const double staged =
          result.latencies.pin_us + result.latencies.preprocess_us;
      result.latencies.model_us =
          std::max(0.0, result.latencies.total_us - staged);
    }
    core::commit_decision(slot.user->user_id, result);
    completed.fetch_add(1, std::memory_order_relaxed);
    if (result.accepted) accepted.fetch_add(1, std::memory_order_relaxed);
    obs::add_counter("service.completed");
    response.service_us =
        static_cast<double>(obs::now_us() - slot.start_us);
    obs::observe_latency_us("service.total_us",
                            response.queue_us + response.service_us);
    response.result = std::move(result);
    slot.pending->promise.set_value(std::move(response));
  }
}

AuthService::AuthService(std::shared_ptr<ModelSource> source,
                         ServiceOptions options)
    : options_(options) {
  if (source == nullptr) {
    throw std::invalid_argument("AuthService: null model source");
  }
  if (options.shards == 0) {
    throw std::invalid_argument("AuthService: shards must be positive");
  }
  if (options.queue_capacity == 0) {
    throw std::invalid_argument(
        "AuthService: queue capacity must be positive");
  }
  if (options.max_batch == 0) options_.max_batch = 1;
  impl_ = std::make_unique<Impl>(std::move(source), options_);
  const std::size_t workers = util::resolve_threads(options_.workers);
  impl_->workers.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    impl_->workers.emplace_back([this] { impl_->worker_loop(); });
  }
}

AuthService::~AuthService() { stop(); }

std::future<AuthResponse> AuthService::submit(AuthRequest request) {
  impl_->submitted.fetch_add(1, std::memory_order_relaxed);
  obs::add_counter("service.submitted");
  Pending pending;
  pending.request = std::move(request);
  pending.enqueue_us = obs::now_us();
  std::future<AuthResponse> future = pending.promise.get_future();
  if (!impl_->accepting.load(std::memory_order_acquire)) {
    impl_->shutdown_rejects.fetch_add(1, std::memory_order_relaxed);
    AuthResponse response;
    response.request_id = pending.request.request_id;
    response.status = RequestStatus::kShuttingDown;
    pending.promise.set_value(std::move(response));
    return future;
  }
  if (!impl_->queue.try_push(std::move(pending))) {
    // Typed load shedding: the queue is full (or closed by a racing
    // stop()); answer immediately instead of blocking or dropping.
    impl_->overloaded.fetch_add(1, std::memory_order_relaxed);
    obs::add_counter("service.overloaded");
    AuthResponse response;
    response.request_id = pending.request.request_id;
    response.status = impl_->queue.closed() ? RequestStatus::kShuttingDown
                                            : RequestStatus::kOverloaded;
    pending.promise.set_value(std::move(response));
    return future;
  }
  impl_->admitted.fetch_add(1, std::memory_order_relaxed);
  return future;
}

void AuthService::stop() {
  std::call_once(impl_->stop_once, [this] {
    impl_->accepting.store(false, std::memory_order_release);
    impl_->queue.close();
    for (std::thread& worker : impl_->workers) {
      if (worker.joinable()) worker.join();
    }
    impl_->stopped.store(true, std::memory_order_release);
  });
}

bool AuthService::stopped() const noexcept {
  return impl_->stopped.load(std::memory_order_acquire);
}

ServiceStats AuthService::stats() const {
  ServiceStats out;
  out.submitted = impl_->submitted.load(std::memory_order_relaxed);
  out.admitted = impl_->admitted.load(std::memory_order_relaxed);
  out.overloaded = impl_->overloaded.load(std::memory_order_relaxed);
  out.shutdown_rejects =
      impl_->shutdown_rejects.load(std::memory_order_relaxed);
  out.completed = impl_->completed.load(std::memory_order_relaxed);
  out.unknown_user = impl_->unknown_user.load(std::memory_order_relaxed);
  out.accepted = impl_->accepted.load(std::memory_order_relaxed);
  out.lru_hits = impl_->lru_hits.load(std::memory_order_relaxed);
  out.lru_misses = impl_->lru_misses.load(std::memory_order_relaxed);
  out.evictions = impl_->cache_evictions();
  out.batches = impl_->batches.load(std::memory_order_relaxed);
  out.batched_requests =
      impl_->batched_requests.load(std::memory_order_relaxed);
  out.max_batch = impl_->max_batch.load(std::memory_order_relaxed);
  return out;
}

std::size_t AuthService::shard_of(std::string_view user) const noexcept {
  return impl_->shard_index(user);
}

std::uint64_t AuthService::route_hash(std::string_view user) noexcept {
  // FNV-1a64: the same family the mmap registry's name index uses, so
  // routing stays deterministic across processes and platforms.
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : user) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace p2auth::service
