#include "service/source.hpp"

#include <utility>

namespace p2auth::service {

MappedRegistrySource::MappedRegistrySource(
    const std::vector<std::string>& paths) {
  stores_.reserve(paths.size());
  for (const std::string& path : paths) {
    stores_.push_back(io::MappedRegistry::open(path));
  }
}

std::optional<core::EnrolledUser> MappedRegistrySource::load(
    std::string_view name) {
  for (const io::MappedRegistry& store : stores_) {
    if (store.contains(name)) return store.materialize(name);
  }
  return std::nullopt;
}

std::size_t MappedRegistrySource::num_users() const {
  std::size_t n = 0;
  for (const io::MappedRegistry& store : stores_) n += store.size();
  return n;
}

void InMemorySource::add(std::string name, core::EnrolledUser user) {
  users_.insert_or_assign(std::move(name), std::move(user));
}

std::optional<core::EnrolledUser> InMemorySource::load(std::string_view name) {
  const auto it = users_.find(name);
  if (it == users_.end()) return std::nullopt;
  return it->second;  // deep copy, matching materialize semantics
}

}  // namespace p2auth::service
