// Model sources: where the service materializes enrolled users from.
//
// The production source is one or more P2MDL001 mmap stores
// (io::MappedRegistry): open touches only header + name index, and a
// cache miss deep-copies one record into an owning EnrolledUser.  The
// in-memory source backs tests and benches that enroll users on the fly.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/enrollment.hpp"
#include "io/mmap_registry.hpp"

namespace p2auth::service {

// Abstract store of enrolled users keyed by device-unique name.  `load`
// must be safe to call concurrently from service workers.
class ModelSource {
 public:
  virtual ~ModelSource() = default;

  // Materializes one user; std::nullopt for unknown names.  Throws
  // util::SerializeError when the backing record exists but is corrupt.
  virtual std::optional<core::EnrolledUser> load(std::string_view name) = 0;

  // Total users reachable through this source (diagnostics).
  virtual std::size_t num_users() const = 0;
};

// One or more mmap-backed P2MDL001 registry stores searched in order.
// All methods on an opened io::MappedRegistry are const reads of the
// mapping, so concurrent `load` calls need no locking.
class MappedRegistrySource : public ModelSource {
 public:
  // Opens every store eagerly; throws util::SerializeError on any
  // invalid file.
  explicit MappedRegistrySource(const std::vector<std::string>& paths);

  std::optional<core::EnrolledUser> load(std::string_view name) override;
  std::size_t num_users() const override;

 private:
  std::vector<io::MappedRegistry> stores_;
};

// In-memory source for tests and benches; `load` deep-copies, matching
// the materialize semantics of the mmap source.
class InMemorySource : public ModelSource {
 public:
  void add(std::string name, core::EnrolledUser user);

  std::optional<core::EnrolledUser> load(std::string_view name) override;
  std::size_t num_users() const override { return users_.size(); }

 private:
  std::map<std::string, core::EnrolledUser, std::less<>> users_;
};

}  // namespace p2auth::service
