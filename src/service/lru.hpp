// Per-shard LRU of hot decision state.
//
// The service keeps materialized models (deep copies out of the mmap
// store) only for the users currently seeing traffic; everyone else
// stays as cold record bytes in the mapping.  One cache serves one
// shard, so the caller provides the locking (a shard mutex) and the
// cache itself stays a plain single-threaded structure.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <map>
#include <string>
#include <string_view>
#include <utility>

namespace p2auth::service {

template <typename V>
class LruCache {
 public:
  // `capacity` == 0 disables caching (every find misses, inserts are
  // dropped) — useful for forcing the re-materialization path in tests.
  explicit LruCache(std::size_t capacity) : capacity_(capacity) {}

  // Looks `key` up and promotes it to most-recently-used; nullptr on a
  // miss.  The pointer stays valid until the entry is evicted.
  V* find(std::string_view key) {
    const auto it = index_.find(key);
    if (it == index_.end()) return nullptr;
    entries_.splice(entries_.begin(), entries_, it->second);
    return &it->second->second;
  }

  // Inserts (or refreshes) `key`, evicting the least-recently-used entry
  // when the cache is full.  Returns a pointer to the stored value
  // (nullptr when capacity is 0).
  V* insert(std::string key, V value) {
    if (capacity_ == 0) return nullptr;
    if (V* existing = find(key)) {
      *existing = std::move(value);
      return existing;
    }
    if (entries_.size() >= capacity_) {
      index_.erase(entries_.back().first);
      entries_.pop_back();
      ++evictions_;
    }
    entries_.emplace_front(std::move(key), std::move(value));
    index_.emplace(entries_.front().first, entries_.begin());
    return &entries_.front().second;
  }

  std::size_t size() const noexcept { return entries_.size(); }
  std::size_t capacity() const noexcept { return capacity_; }
  std::uint64_t evictions() const noexcept { return evictions_; }

 private:
  using Entry = std::pair<std::string, V>;
  std::size_t capacity_;
  std::uint64_t evictions_ = 0;
  std::list<Entry> entries_;  // front = most recently used
  // Keys view the list nodes' strings (stable across splice), so lookup
  // is heterogeneous and allocation-free.
  std::map<std::string_view, typename std::list<Entry>::iterator>
      index_;
};

}  // namespace p2auth::service
