// Bounded MPMC admission queue.
//
// Admission control is load shedding, not back-pressure: `try_push`
// NEVER blocks — a full queue refuses the item immediately so the caller
// can return the typed kOverloaded rejection while the client still
// cares about the answer.  Consumers block in `pop_batch`, which hands
// back up to `max` items at once: everything a worker drains in one wake
// forms one scoring batch, so batch size adapts to the instantaneous
// backlog (1 under light load, `max` under pressure).
//
// Shutdown contract: `close()` refuses further pushes but pops continue
// until the queue is drained — every admitted item is handed to exactly
// one consumer, then `pop_batch` returns false forever.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

namespace p2auth::service {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  // Admits `item` unless the queue is full or closed.  Returns false
  // without consuming `item` in either case; never blocks.
  bool try_push(T&& item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    ready_.notify_one();
    return true;
  }

  // Blocks until at least one item is available (or the queue is closed
  // and drained), then moves up to `max` items into `out` (cleared
  // first).  Returns false only on closed-and-drained.
  bool pop_batch(std::size_t max, std::vector<T>& out) {
    out.clear();
    std::unique_lock<std::mutex> lock(mu_);
    ready_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;  // closed and drained
    const std::size_t take = max == 0 ? 1 : std::min(max, items_.size());
    for (std::size_t i = 0; i < take; ++i) {
      out.push_back(std::move(items_.front()));
      items_.pop_front();
    }
    return true;
  }

  // Refuses further pushes and wakes every blocked consumer.  Items
  // already admitted remain poppable until drained.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }
  std::size_t capacity() const noexcept { return capacity_; }
  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable ready_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace p2auth::service
