// Decision checksums: one 64-bit digest over every decision-bearing
// field of an AuthResult.
//
// The service's batched concurrent path must be *bit-identical* to a
// serial per-request replay; the load harness and the integration tests
// prove it by checksumming each response and comparing against a hidden
// ground-truth digest computed from serial `core::authenticate` on the
// same (user, observation).  Wall-clock fields (stage latencies) are
// deliberately excluded — they are measurements, not decision state.
#pragma once

#include <bit>
#include <cstdint>

#include "core/authenticator.hpp"

namespace p2auth::service {

inline constexpr std::uint64_t kChecksumSeed = 0xcbf29ce484222325ull;

inline std::uint64_t checksum_mix(std::uint64_t h, std::uint64_t v) noexcept {
  // FNV-1a over the value's eight bytes.
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffu;
    h *= 0x100000001b3ull;
  }
  return h;
}

// Digest of the decision state of one authentication result.  Two
// results with equal digests agree on the accept bit, the typed reason,
// the detected case, the model path, the per-key votes, the channel
// health view, the PIN flags and the exact waveform-score bit pattern.
inline std::uint64_t decision_checksum(const core::AuthResult& r) noexcept {
  std::uint64_t h = kChecksumSeed;
  h = checksum_mix(h, r.accepted ? 1 : 0);
  h = checksum_mix(h, r.pin_checked ? 1 : 0);
  h = checksum_mix(h, r.pin_ok ? 1 : 0);
  h = checksum_mix(h, core::audit_code(r.detected_case));
  h = checksum_mix(h, core::audit_code(r.reason));
  h = checksum_mix(h, core::audit_code(r.model_path));
  h = checksum_mix(h, r.channel_mask);
  h = checksum_mix(h, r.channels_assessed);
  h = checksum_mix(h, static_cast<std::uint64_t>(r.votes.size()));
  for (const int v : r.votes) {
    h = checksum_mix(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(v)));
  }
  h = checksum_mix(h, std::bit_cast<std::uint64_t>(r.waveform_score));
  return h;
}

}  // namespace p2auth::service
