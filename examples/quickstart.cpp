// Quickstart: enroll one user and authenticate a few attempts.
//
// Walks the whole P2Auth flow on simulated hardware:
//   1. build a small population (one legitimate user, attackers, third
//      parties);
//   2. enroll the user: 9 one-handed entries of their PIN + the
//      third-party pool as the negative class;
//   3. authenticate: the user's own later entries, a wrong-PIN attempt,
//      and an emulating attacker who knows the PIN.
#include <cstdio>

#include "core/authenticator.hpp"
#include "core/enrollment.hpp"
#include "keystroke/pinpad.hpp"
#include "sim/attacks.hpp"
#include "sim/dataset.hpp"
#include "util/stopwatch.hpp"

using namespace p2auth;

namespace {

core::Observation observe(sim::Trial trial) {
  return core::Observation{std::move(trial.entry), std::move(trial.trace)};
}

void report(const char* what, const core::AuthResult& r) {
  std::printf("%-34s -> %s  (case: %s, model: %s, reason: %s)\n", what,
              r.accepted ? "ACCEPT" : "REJECT",
              core::to_string(r.detected_case).c_str(),
              core::to_string(r.model_path).c_str(),
              r.reason_text().c_str());
}

}  // namespace

int main() {
  // A small cohort: the wearer plus attack/third-party populations.
  sim::PopulationConfig pop_cfg;
  pop_cfg.num_users = 1;
  pop_cfg.seed = 42;
  const sim::Population population = sim::make_population(pop_cfg);
  const ppg::UserProfile& alice = population.users.front();
  const keystroke::Pin pin("1628");

  util::Rng rng(2024);
  sim::TrialOptions trial_options;  // 4-channel prototype, one-handed

  // --- Enrollment. ---
  std::printf("Enrolling %s with PIN %s...\n", alice.name.c_str(),
              pin.digits().c_str());
  std::vector<core::Observation> positives;
  util::Rng enroll_rng = rng.fork("enroll");
  for (sim::Trial& t :
       sim::make_trials(alice, pin, 9, trial_options, enroll_rng)) {
    positives.push_back(observe(std::move(t)));
  }
  util::Rng pool_rng = rng.fork("pool");
  std::vector<core::Observation> negatives;
  for (sim::Trial& t :
       sim::make_third_party_pool(population, 100, trial_options, pool_rng)) {
    negatives.push_back(observe(std::move(t)));
  }

  util::Stopwatch clock;
  core::EnrollmentConfig enrollment;
  const core::EnrolledUser enrolled =
      core::enroll_user(pin, positives, negatives, enrollment);
  std::printf("Enrollment took %.2f s (%zu key models)\n\n", clock.seconds(),
              enrolled.stats.key_models_trained);

  // --- Authentication. ---
  core::AuthOptions auth;
  util::Rng test_rng = rng.fork("test");

  clock.restart();
  for (int i = 0; i < 3; ++i) {
    util::Rng r = test_rng.fork(100 + i);
    const auto obs = observe(sim::make_trial(alice, pin, trial_options, r));
    report("legitimate user, correct PIN", core::authenticate(enrolled, obs, auth));
  }
  std::printf("(%.3f s per authentication)\n\n", clock.seconds() / 3.0);

  {
    util::Rng r = test_rng.fork("wrong-pin");
    const auto obs =
        observe(sim::make_trial(alice, keystroke::Pin("9999"), trial_options, r));
    report("legitimate user, wrong PIN", core::authenticate(enrolled, obs, auth));
  }
  {
    util::Rng r = test_rng.fork("two-handed");
    sim::TrialOptions two_handed = trial_options;
    two_handed.input_case = keystroke::InputCase::kTwoHandedThree;
    const auto obs = observe(sim::make_trial(alice, pin, two_handed, r));
    report("legitimate user, two-handed", core::authenticate(enrolled, obs, auth));
  }
  for (int i = 0; i < 3; ++i) {
    util::Rng r = test_rng.fork(200 + i);
    const auto obs = observe(sim::make_emulating_attack(
        population.attackers[i % population.attackers.size()], alice, pin,
        trial_options, sim::EmulationOptions{}, r));
    report("emulating attacker, correct PIN", core::authenticate(enrolled, obs, auth));
  }
  return 0;
}
