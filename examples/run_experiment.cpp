// Command-line experiment runner: evaluate the P2Auth pipeline under an
// arbitrary configuration without writing code.
//
//   run_experiment [--users N] [--case one|double3|double2]
//                  [--channels 1..4] [--rate HZ] [--boost] [--no-pin]
//                  [--third-party N] [--enroll N] [--test N]
//                  [--wearing inner|back] [--activity static|walking]
//                  [--seed S] [--report PATH] [--trace PATH]
//                  [--audit-log PATH] [--prometheus PATH] [--drift]
//                  [--scenario NAME] [--week N]
//
// --scenario applies a named daily-life condition to every *test*
// attempt (see sim/scenarios.hpp: rest, elevated, recovering, walking,
// typing-move, gain-shift, loose-strap); --week ages the test-time
// physiology N weeks past enrollment (template-aging sweeps).
//
// Prints per-user and mean accuracy / TRR for the configuration, i.e. a
// custom row of the paper's Fig. 10-style tables.  A machine-readable
// run report (results + per-stage span timings + pipeline metrics) is
// written to --report (default run_experiment_report.json); --trace
// additionally dumps the full span timeline in Chrome trace-event format
// (load it in chrome://tracing or https://ui.perfetto.dev).
//
// Observability extras: --audit-log records every authentication
// decision into a CRC-framed flight-recorder log (inspect it with
// tools/audit_inspect), --prometheus writes the final metrics snapshot
// in Prometheus text exposition format, and --drift runs the online
// FRR/FAR drift monitor against the enrollment baselines and embeds its
// verdict (live estimates + typed alerts) in the run report.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "backend/policy.hpp"
#include "core/evaluation.hpp"
#include "obs/audit.hpp"
#include "obs/metrics.hpp"
#include "obs/prometheus.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "util/table.hpp"

using namespace p2auth;

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--users N] [--case one|double3|double2] "
               "[--channels 1..4]\n"
               "          [--rate HZ] [--boost] [--no-pin] "
               "[--third-party N]\n"
               "          [--enroll N] [--test N] [--wearing inner|back] "
               "[--seed S]\n"
               "          [--activity static|walking] [--report PATH] "
               "[--trace PATH]\n"
               "          [--audit-log PATH] [--prometheus PATH] "
               "[--drift]\n"
               "          [--scenario NAME] [--week N]\n",
               argv0);
  std::exit(2);
}

long parse_long(const char* argv0, const char* value) {
  char* end = nullptr;
  const long v = std::strtol(value, &end, 10);
  if (end == value || *end != '\0') usage(argv0);
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  core::ExperimentConfig cfg;
  cfg.seed = 1;
  std::string report_path = "run_experiment_report.json";
  std::string trace_path;
  std::string audit_path;
  std::string prometheus_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--users") {
      cfg.population.num_users = static_cast<std::size_t>(
          parse_long(argv[0], next()));
    } else if (arg == "--case") {
      const std::string c = next();
      if (c == "one") {
        cfg.test_case = keystroke::InputCase::kOneHanded;
      } else if (c == "double3") {
        cfg.test_case = keystroke::InputCase::kTwoHandedThree;
      } else if (c == "double2") {
        cfg.test_case = keystroke::InputCase::kTwoHandedTwo;
      } else {
        usage(argv[0]);
      }
    } else if (arg == "--channels") {
      cfg.sensors = ppg::SensorConfig::with_channels(
          static_cast<std::size_t>(parse_long(argv[0], next())));
    } else if (arg == "--rate") {
      cfg.sensors.rate_hz = static_cast<double>(parse_long(argv[0], next()));
    } else if (arg == "--boost") {
      cfg.privacy_boost = true;
    } else if (arg == "--no-pin") {
      cfg.no_pin = true;
      cfg.enroll_entries = 18;
    } else if (arg == "--third-party") {
      cfg.third_party_samples =
          static_cast<std::size_t>(parse_long(argv[0], next()));
    } else if (arg == "--enroll") {
      cfg.enroll_entries =
          static_cast<std::size_t>(parse_long(argv[0], next()));
    } else if (arg == "--test") {
      cfg.test_entries =
          static_cast<std::size_t>(parse_long(argv[0], next()));
    } else if (arg == "--wearing") {
      const std::string w = next();
      if (w == "inner") {
        cfg.wearing = ppg::WearingPosition::kInnerWrist;
      } else if (w == "back") {
        cfg.wearing = ppg::WearingPosition::kBackOfWrist;
      } else {
        usage(argv[0]);
      }
    } else if (arg == "--seed") {
      cfg.seed = static_cast<std::uint64_t>(parse_long(argv[0], next()));
    } else if (arg == "--activity") {
      const std::string a = next();
      if (a == "static") {
        cfg.test_activity = ppg::ActivityState::kStatic;
      } else if (a == "walking") {
        cfg.test_activity = ppg::ActivityState::kWalking;
      } else {
        usage(argv[0]);
      }
    } else if (arg == "--report") {
      report_path = next();
    } else if (arg == "--trace") {
      trace_path = next();
    } else if (arg == "--audit-log") {
      audit_path = next();
    } else if (arg == "--prometheus") {
      prometheus_path = next();
    } else if (arg == "--drift") {
      cfg.monitor_drift = true;
    } else if (arg == "--scenario") {
      const std::string name = next();
      const auto scenario = sim::scenario_by_name(name);
      if (!scenario) {
        std::fprintf(stderr,
                     "unknown scenario '%s' (rest, elevated, recovering, "
                     "walking, typing-move, gain-shift, loose-strap)\n",
                     name.c_str());
        usage(argv[0]);
      }
      // Preserve a week set by an earlier --week (order-independent).
      const std::size_t week = cfg.test_scenario.week;
      cfg.test_scenario = *scenario;
      cfg.test_scenario.week = week;
    } else if (arg == "--week") {
      cfg.test_scenario.week =
          static_cast<std::size_t>(parse_long(argv[0], next()));
    } else {
      usage(argv[0]);
    }
  }

  std::printf("Running: %zu users, %zu channels @ %.0f Hz, enroll %zu / "
              "test %zu, third-party %zu%s%s\n\n",
              cfg.population.num_users, cfg.sensors.channels.size(),
              cfg.sensors.rate_hz, cfg.enroll_entries, cfg.test_entries,
              cfg.third_party_samples, cfg.privacy_boost ? ", boost" : "",
              cfg.no_pin ? ", no-PIN" : "");

  // Flight recorder: every authentication decision of the sweep lands in
  // the audit log; uninstalled before destruction (see obs/audit.hpp).
  std::unique_ptr<obs::AuditRecorder> recorder;
  if (!audit_path.empty()) {
    try {
      recorder = std::make_unique<obs::AuditRecorder>(audit_path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
    obs::install_audit_recorder(recorder.get());
  }

  const core::ExperimentResult result = run_experiment(cfg);

  if (recorder) {
    obs::install_audit_recorder(nullptr);
    recorder->flush();
    const obs::AuditStats stats = recorder->stats();
    std::printf("audit log: %llu decisions (%llu dropped) -> %s\n",
                static_cast<unsigned long long>(stats.written),
                static_cast<unsigned long long>(stats.dropped),
                audit_path.c_str());
  }
  util::Table table(
      {"user", "accuracy", "TRR (random)", "TRR (emulating)"});
  for (const auto& u : result.per_user) {
    table.begin_row()
        .cell("user" + std::to_string(u.user_id))
        .cell(100.0 * u.metrics.accuracy(), 1)
        .cell(100.0 * u.metrics.trr_random(), 1)
        .cell(100.0 * u.metrics.trr_emulating(), 1);
  }
  table.begin_row()
      .cell("mean")
      .cell(100.0 * result.mean_accuracy(), 1)
      .cell(100.0 * result.mean_trr_random(), 1)
      .cell(100.0 * result.mean_trr_emulating(), 1);
  table.print(std::cout, "Results (%)");

  // Structured run report: configuration, headline results, per-stage
  // span aggregates and pipeline metrics collected during the run.
  obs::Report report("run_experiment");
  obs::Json config = obs::Json::object();
  config.set("users", static_cast<std::uint64_t>(cfg.population.num_users));
  config.set("channels",
             static_cast<std::uint64_t>(cfg.sensors.channels.size()));
  config.set("rate_hz", cfg.sensors.rate_hz);
  config.set("enroll_entries", static_cast<std::uint64_t>(cfg.enroll_entries));
  config.set("test_entries", static_cast<std::uint64_t>(cfg.test_entries));
  config.set("third_party_samples",
             static_cast<std::uint64_t>(cfg.third_party_samples));
  config.set("privacy_boost", cfg.privacy_boost);
  config.set("no_pin", cfg.no_pin);
  config.set("seed", static_cast<std::uint64_t>(cfg.seed));
  report.root().set("config", std::move(config));
  // SIMD backend the hot kernels dispatched to for this run.
  report.set("backend",
             std::string(p2auth::backend::kernels().name));
  report.set("mean_accuracy", result.mean_accuracy());
  report.set("mean_trr_random", result.mean_trr_random());
  report.set("mean_trr_emulating", result.mean_trr_emulating());
  report.add_table("per_user", table);
  if (result.drift.has_value()) {
    report.root().set("drift", result.drift->summary());
    const auto alerts = result.drift->check();
    std::printf("\ndrift monitor: est. FRR %.3f, est. FAR %.3f, "
                "%zu alert(s)\n",
                result.drift->estimated_frr(),
                result.drift->estimated_far(), alerts.size());
    for (const auto& alert : alerts) {
      std::printf("  [%s] %s\n", obs::drift_alert_slug(alert.kind),
                  alert.detail.c_str());
    }
  }
  report.attach_metrics(obs::snapshot_metrics());
  report.attach_span_summary(obs::snapshot_trace());
  if (!prometheus_path.empty()) {
    std::ofstream prom(prometheus_path);
    if (!prom) {
      std::fprintf(stderr, "error: cannot open %s\n",
                   prometheus_path.c_str());
      return 1;
    }
    obs::write_prometheus_text(prom, obs::snapshot_metrics());
    std::printf("prometheus metrics written to %s\n",
                prometheus_path.c_str());
  }
  try {
    report.write_file(report_path);
    std::printf("\nrun report written to %s\n", report_path.c_str());
    if (!trace_path.empty()) {
      obs::write_chrome_trace_file(trace_path);
      std::printf("chrome trace written to %s (open in chrome://tracing)\n",
                  trace_path.c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
