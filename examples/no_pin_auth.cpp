// No-PIN authentication (paper section IV-B 2.6): the user never sets a
// fixed PIN; identity is verified purely from the keystroke-induced PPG
// patterns of whatever digits they type.
//
// Enrollment must cover the whole pad, so the user registers by typing
// the five covering PINs a few times each.  At login the user types ANY
// digit sequence; each keystroke is verified against that digit's
// single-waveform model and >= 3 of 4 must pass.
#include <algorithm>
#include <cstdio>

#include "core/authenticator.hpp"
#include "core/enrollment.hpp"
#include "sim/attacks.hpp"
#include "sim/dataset.hpp"

using namespace p2auth;

namespace {

core::Observation observe(sim::Trial trial) {
  return core::Observation{std::move(trial.entry), std::move(trial.trace)};
}

}  // namespace

int main() {
  sim::PopulationConfig pop_cfg;
  pop_cfg.num_users = 1;
  pop_cfg.seed = 31337;
  const sim::Population population = sim::make_population(pop_cfg);
  const ppg::UserProfile& user = population.users.front();

  util::Rng rng(2718);
  sim::TrialOptions options;

  // --- Enrollment across the covering PIN set (18 entries). ---
  const auto& pins = keystroke::paper_pins();
  std::vector<core::Observation> positives, negatives;
  util::Rng er = rng.fork("enroll");
  for (int e = 0; e < 18; ++e) {
    util::Rng r = er.fork(e);
    positives.push_back(observe(
        sim::make_trial(user, pins[e % pins.size()], options, r)));
  }
  util::Rng pr = rng.fork("pool");
  for (sim::Trial& t :
       sim::make_third_party_pool(population, 100, options, pr)) {
    negatives.push_back(observe(std::move(t)));
  }

  core::EnrollmentConfig enrollment;
  enrollment.train_full_model = false;  // no fixed PIN => per-key models only
  const core::EnrolledUser enrolled = core::enroll_user(
      keystroke::Pin() /* no PIN registered */, positives, negatives,
      enrollment);
  std::printf("No-PIN enrollment complete: %zu of 10 digit keys have "
              "models\n\n", enrolled.stats.key_models_trained);

  core::AuthOptions auth;
  util::Rng t = rng.fork("attempts");

  std::printf("--- the user types arbitrary digit sequences ---\n");
  int accepted = 0, total = 0;
  for (int i = 0; i < 6; ++i) {
    util::Rng pin_rng = t.fork(1000 + i);
    const keystroke::Pin random = sim::random_pin(pin_rng);
    util::Rng r = t.fork(i);
    const auto obs = observe(sim::make_trial(user, random, options, r));
    const core::AuthResult result = authenticate(enrolled, obs, auth);
    std::printf("typed %s -> %s (%zu/4 keystroke votes passed)\n",
                random.digits().c_str(),
                result.accepted ? "ACCEPT" : "REJECT",
                static_cast<std::size_t>(std::count(result.votes.begin(),
                                                    result.votes.end(), 1)));
    accepted += result.accepted ? 1 : 0;
    ++total;
  }
  std::printf("legitimate acceptance: %d/%d\n\n", accepted, total);

  std::printf("--- attackers typing the same digits ---\n");
  int rejected = 0, attacks = 0;
  for (int i = 0; i < 6; ++i) {
    util::Rng pin_rng = t.fork(2000 + i);
    const keystroke::Pin random = sim::random_pin(pin_rng);
    util::Rng r = t.fork(100 + i);
    const auto obs = observe(sim::make_trial(
        population.attackers[i % population.attackers.size()], random,
        options, r));
    const core::AuthResult result = authenticate(enrolled, obs, auth);
    std::printf("attacker typed %s -> %s\n", random.digits().c_str(),
                result.accepted ? "ACCEPT" : "REJECT");
    rejected += result.accepted ? 0 : 1;
    ++attacks;
  }
  std::printf("attacker rejection: %d/%d\n\n", rejected, attacks);
  std::printf("No PIN to steal: shoulder-surfing the digits gains the "
              "attacker nothing.\n");
  return 0;
}
