// Two-factor login walkthrough: a phone + watch login flow under attack.
//
// Simulates the paper's deployment story end to end:
//   * Alice registers her PIN while wearing the watch (enrollment);
//   * Alice unlocks her phone one-handed and two-handed;
//   * a random attacker guesses PINs;
//   * an emulating attacker shoulder-surfed Alice's PIN and rhythm.
// The demo prints each attempt's two-factor breakdown (PIN factor, case
// identification, biometric votes/score) the way a system log would.
#include <cstdio>

#include "core/authenticator.hpp"
#include "core/enrollment.hpp"
#include "sim/attacks.hpp"
#include "sim/dataset.hpp"

using namespace p2auth;

namespace {

core::Observation observe(sim::Trial trial) {
  return core::Observation{std::move(trial.entry), std::move(trial.trace)};
}

void log_attempt(const char* who, const keystroke::Pin& typed,
                 const core::AuthResult& r) {
  std::printf("%-22s typed %s | PIN %-7s | case %-12s | votes [",
              who, typed.digits().c_str(),
              !r.pin_checked ? "skipped" : (r.pin_ok ? "ok" : "WRONG"),
              core::to_string(r.detected_case).c_str());
  for (std::size_t i = 0; i < r.votes.size(); ++i) {
    std::printf("%s%+d", i ? " " : "", r.votes[i]);
  }
  std::printf("] score %+5.2f => %s\n", r.waveform_score,
              r.accepted ? "ACCEPT" : "REJECT");
}

}  // namespace

int main() {
  sim::PopulationConfig pop_cfg;
  pop_cfg.num_users = 1;
  pop_cfg.seed = 1001;
  const sim::Population population = sim::make_population(pop_cfg);
  const ppg::UserProfile& alice = population.users.front();
  const keystroke::Pin pin("5094");

  util::Rng rng(90210);
  sim::TrialOptions options;

  // --- Enrollment: 9 careful one-handed entries + the phone's stored
  // third-party pool. ---
  std::vector<core::Observation> positives, negatives;
  util::Rng er = rng.fork("enroll");
  for (sim::Trial& t : sim::make_trials(alice, pin, 9, options, er)) {
    positives.push_back(observe(std::move(t)));
  }
  util::Rng pr = rng.fork("pool");
  for (sim::Trial& t :
       sim::make_third_party_pool(population, 100, options, pr)) {
    negatives.push_back(observe(std::move(t)));
  }
  core::EnrollmentConfig enrollment;
  const core::EnrolledUser alice_enrolled =
      core::enroll_user(pin, positives, negatives, enrollment);
  std::printf("Enrolled alice with PIN %s (%zu per-key models)\n\n",
              pin.digits().c_str(),
              alice_enrolled.stats.key_models_trained);

  core::AuthOptions auth;
  util::Rng t = rng.fork("attempts");

  std::printf("--- legitimate logins ---\n");
  for (int i = 0; i < 3; ++i) {
    util::Rng r = t.fork(i);
    const auto obs = observe(sim::make_trial(alice, pin, options, r));
    log_attempt("alice (one-handed)", pin, authenticate(alice_enrolled, obs, auth));
  }
  {
    sim::TrialOptions two_handed = options;
    two_handed.input_case = keystroke::InputCase::kTwoHandedThree;
    util::Rng r = t.fork("2h3");
    const auto obs = observe(sim::make_trial(alice, pin, two_handed, r));
    log_attempt("alice (two-handed)", pin, authenticate(alice_enrolled, obs, auth));
  }
  {
    sim::TrialOptions two_handed = options;
    two_handed.input_case = keystroke::InputCase::kTwoHandedTwo;
    util::Rng r = t.fork("2h2");
    const auto obs = observe(sim::make_trial(alice, pin, two_handed, r));
    log_attempt("alice (watch hand x2)", pin, authenticate(alice_enrolled, obs, auth));
  }

  std::printf("\n--- random attacks (guessing PINs) ---\n");
  for (int i = 0; i < 3; ++i) {
    util::Rng r = t.fork(100 + i);
    sim::Trial trial = sim::make_random_attack(
        population.attackers[i % population.attackers.size()], options, r);
    const keystroke::Pin guessed = trial.entry.pin;
    log_attempt("attacker (random)", guessed,
                authenticate(alice_enrolled, observe(std::move(trial)), auth));
  }

  std::printf("\n--- emulating attacks (correct PIN, imitated rhythm) ---\n");
  for (int i = 0; i < 3; ++i) {
    util::Rng r = t.fork(200 + i);
    sim::Trial trial = sim::make_emulating_attack(
        population.attackers[i % population.attackers.size()], alice, pin,
        options, sim::EmulationOptions{}, r);
    log_attempt("attacker (emulating)", pin,
                authenticate(alice_enrolled, observe(std::move(trial)), auth));
  }
  std::printf("\nThe PIN factor stops random guessing; the PPG factor stops "
              "shoulder-surfers who know the PIN.\n");
  return 0;
}
