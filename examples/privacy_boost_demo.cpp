// Privacy boost (paper section IV-B 2.2): protecting the stored biometric
// by fusing the four single-keystroke waveforms additively (Eq. 4) before
// any template/model is built.
//
// If the enrollment database leaks, an attacker obtains only fused
// waveforms.  This demo quantifies what the fusion hides: it measures how
// well an "inversion" adversary can match a leaked fused waveform against
// individual keystroke segments, and compares accuracy with/without the
// boost.
#include <cstdio>

#include "core/authenticator.hpp"
#include "core/enrollment.hpp"
#include "core/preprocess.hpp"
#include "core/segmentation.hpp"
#include "signal/dtw.hpp"
#include "sim/dataset.hpp"

using namespace p2auth;

namespace {

core::Observation observe(sim::Trial trial) {
  return core::Observation{std::move(trial.entry), std::move(trial.trace)};
}

// Preprocess + segment an entry into its single-keystroke waveforms.
std::vector<std::vector<core::Series>> segments_of(
    const core::Observation& obs) {
  const auto pre = core::preprocess_entry(obs);
  std::vector<std::vector<core::Series>> segments;
  for (std::size_t i = 0; i < pre.keystroke_present.size(); ++i) {
    if (!pre.keystroke_present[i]) continue;
    segments.push_back(core::extract_segment(
        pre.filtered, pre.calibrated_indices[i], pre.rate_hz));
  }
  return segments;
}

}  // namespace

int main() {
  sim::PopulationConfig pop_cfg;
  pop_cfg.num_users = 1;
  pop_cfg.seed = 4096;
  const sim::Population population = sim::make_population(pop_cfg);
  const ppg::UserProfile& user = population.users.front();
  const keystroke::Pin pin("7412");

  util::Rng rng(65536);
  sim::TrialOptions options;

  // Enrollment data.
  std::vector<core::Observation> positives, negatives;
  util::Rng er = rng.fork("enroll");
  for (sim::Trial& t : sim::make_trials(user, pin, 9, options, er)) {
    positives.push_back(observe(std::move(t)));
  }
  util::Rng pr = rng.fork("pool");
  for (sim::Trial& t :
       sim::make_third_party_pool(population, 100, options, pr)) {
    negatives.push_back(observe(std::move(t)));
  }

  // Enroll twice: with and without the privacy boost.
  core::EnrollmentConfig plain_cfg;
  core::EnrollmentConfig boost_cfg;
  boost_cfg.privacy_boost = true;
  const core::EnrolledUser plain =
      core::enroll_user(pin, positives, negatives, plain_cfg);
  const core::EnrolledUser boosted =
      core::enroll_user(pin, positives, negatives, boost_cfg);

  // --- Usability cost: acceptance with vs without fusion. ---
  core::AuthOptions auth;
  util::Rng t = rng.fork("test");
  int plain_accepts = 0, boost_accepts = 0;
  const int attempts = 10;
  for (int i = 0; i < attempts; ++i) {
    util::Rng r = t.fork(i);
    const auto obs = observe(sim::make_trial(user, pin, options, r));
    plain_accepts += authenticate(plain, obs, auth).accepted ? 1 : 0;
    boost_accepts += authenticate(boosted, obs, auth).accepted ? 1 : 0;
  }
  std::printf("acceptance without boost: %d/%d, with boost: %d/%d\n",
              plain_accepts, attempts, boost_accepts, attempts);

  // --- Privacy gain: how recognisable is a leaked template? ---
  // The adversary holds one leaked waveform and tries to match it to a
  // freshly observed single keystroke of the same user via DTW.  Without
  // the boost the leak IS a single keystroke (direct match); with the
  // boost the leak is a 4-way sum.
  util::Rng leak_rng = rng.fork("leak");
  const auto leak_obs = observe(sim::make_trial(user, pin, options, leak_rng));
  const auto leak_segments = segments_of(leak_obs);
  if (leak_segments.size() < 4) {
    std::printf("(not enough detected keystrokes in the leaked entry)\n");
    return 0;
  }
  const auto fused = core::fuse_segments(leak_segments);

  util::Rng probe_rng = rng.fork("probe");
  const auto probe_obs =
      observe(sim::make_trial(user, pin, options, probe_rng));
  const auto probe_segments = segments_of(probe_obs);

  signal::DtwOptions dtw;
  dtw.band = 20;
  double direct = 0.0, via_fused = 0.0;
  std::size_t matched = 0;
  for (std::size_t k = 0;
       k < std::min(leak_segments.size(), probe_segments.size()); ++k) {
    direct += signal::dtw_distance_normalized(leak_segments[k][0],
                                              probe_segments[k][0], dtw);
    via_fused += signal::dtw_distance_normalized(fused[0],
                                                 probe_segments[k][0], dtw);
    ++matched;
  }
  direct /= static_cast<double>(matched);
  via_fused /= static_cast<double>(matched);
  std::printf("adversary's match distance to fresh keystrokes:\n");
  std::printf("  leaked raw segment  -> %.3f (small: the leak is directly "
              "reusable)\n", direct);
  std::printf("  leaked fused (Eq.4) -> %.3f (%.1fx larger: individual "
              "keystrokes are hidden)\n", via_fused, via_fused / direct);
  std::printf("\nFusion trades a little acceptance for templates that no "
              "longer expose per-key biometrics.\n");
  return 0;
}
