// Dataset exporter: writes a synthetic P2Auth corpus to CSV so the traces
// can be analysed outside C++ (plots, notebooks, other toolchains).
//
//   export_dataset [--out DIR] [--users N] [--reps R] [--seed S]
//
// Produces, under DIR:
//   manifest.csv                 one row per trial (subject, pin, file, ...)
//   trial_<k>_ppg.csv            per-channel PPG samples
//   trial_<k>_keystrokes.csv     digit index, recorded & true times, hand
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>

#include "sim/dataset.hpp"
#include "util/csv.hpp"

using namespace p2auth;

int main(int argc, char** argv) {
  std::string out_dir = "p2auth_dataset";
  std::size_t num_users = 3;
  std::size_t reps = 3;
  std::uint64_t seed = 7;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--out") {
      out_dir = next();
    } else if (arg == "--users") {
      num_users = static_cast<std::size_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--reps") {
      reps = static_cast<std::size_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--seed") {
      seed = std::strtoull(next(), nullptr, 10);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--out DIR] [--users N] [--reps R] "
                   "[--seed S]\n", argv[0]);
      return 2;
    }
  }

  std::filesystem::create_directories(out_dir);
  sim::PopulationConfig pop_cfg;
  pop_cfg.num_users = num_users;
  pop_cfg.seed = seed;
  const sim::Population population = sim::make_population(pop_cfg);
  const auto& pins = keystroke::paper_pins();
  sim::TrialOptions options;
  util::Rng rng(seed ^ 0xda7aULL);

  // Manifest columns.
  std::vector<double> m_trial, m_subject, m_pin, m_rate, m_channels,
      m_length;
  std::size_t trial_id = 0;
  for (std::size_t u = 0; u < population.users.size(); ++u) {
    const keystroke::Pin& pin = pins[u % pins.size()];
    util::Rng ur = rng.fork(u);
    for (const sim::Trial& t :
         sim::make_trials(population.users[u], pin, reps, options, ur)) {
      const std::string stem =
          out_dir + "/trial_" + std::to_string(trial_id);
      // PPG channels.
      std::vector<std::string> names;
      std::vector<std::vector<double>> columns;
      for (std::size_t c = 0; c < t.trace.num_channels(); ++c) {
        names.push_back(options.sensors.channels[c].label());
        columns.push_back(t.trace.channels[c]);
      }
      util::write_csv(stem + "_ppg.csv", names, columns);
      // Keystroke log.
      std::vector<double> digits, recorded, truth, hand;
      for (const auto& e : t.entry.events) {
        digits.push_back(static_cast<double>(e.digit - '0'));
        recorded.push_back(e.recorded_time_s);
        truth.push_back(e.true_time_s);
        hand.push_back(e.hand == keystroke::Hand::kWatchHand ? 1.0 : 0.0);
      }
      util::write_csv(stem + "_keystrokes.csv",
                      {"digit", "recorded_time_s", "true_time_s",
                       "watch_hand"},
                      {digits, recorded, truth, hand});
      m_trial.push_back(static_cast<double>(trial_id));
      m_subject.push_back(static_cast<double>(t.subject_id));
      m_pin.push_back(std::strtod(pin.digits().c_str(), nullptr));
      m_rate.push_back(t.trace.rate_hz);
      m_channels.push_back(static_cast<double>(t.trace.num_channels()));
      m_length.push_back(static_cast<double>(t.trace.length()));
      ++trial_id;
    }
  }
  util::write_csv(out_dir + "/manifest.csv",
                  {"trial", "subject", "pin", "rate_hz", "channels",
                   "samples"},
                  {m_trial, m_subject, m_pin, m_rate, m_channels, m_length});
  std::printf("wrote %zu trials (%zu users x %zu reps) to %s/\n", trial_id,
              population.users.size(), reps, out_dir.c_str());
  return 0;
}
