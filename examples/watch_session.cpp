// The paper's deployment story (section VI), end to end:
//
//   1. the watch is put on — wear detection via heart-rate status;
//   2. the user authenticates ONCE (streaming, sample by sample);
//   3. the session stays trusted while the heart-rate rhythm confirms
//      continuous wear;
//   4. the watch comes off — the session ends; putting it on again (or
//      handing it to someone else) requires re-authentication;
//   5. a sensitive action (payment) triggers a re-authentication, which
//      an attacker wearing the stolen watch fails.
#include <cstdio>

#include "core/enrollment.hpp"
#include "core/streaming.hpp"
#include "ppg/activity.hpp"
#include "ppg/heart_rate.hpp"
#include "ppg/pulse_model.hpp"
#include "sim/dataset.hpp"

using namespace p2auth;

namespace {

core::Observation observe(sim::Trial trial) {
  return core::Observation{std::move(trial.entry), std::move(trial.trace)};
}

// Streams a trial through the streaming authenticator.
core::AuthResult stream_entry(core::StreamingAuthenticator& auth,
                              const sim::Trial& trial) {
  std::size_t next_event = 0;
  std::vector<double> sample(trial.trace.num_channels());
  for (std::size_t i = 0; i < trial.trace.length(); ++i) {
    const double t = static_cast<double>(i) / trial.trace.rate_hz;
    while (next_event < trial.entry.events.size() &&
           trial.entry.events[next_event].recorded_time_s <= t) {
      auth.push_keystroke(trial.entry.events[next_event].digit,
                          trial.entry.events[next_event].recorded_time_s);
      ++next_event;
    }
    for (std::size_t c = 0; c < sample.size(); ++c) {
      sample[c] = trial.trace.channels[c][i];
    }
    auth.push_sample(sample);
    if (auto result = auth.poll()) return *result;
  }
  if (auto result = auth.poll()) return *result;
  core::AuthResult incomplete;
  incomplete.reason = core::RejectReason::kIncomplete;
  return incomplete;
}

}  // namespace

int main() {
  sim::PopulationConfig pop_cfg;
  pop_cfg.num_users = 1;
  pop_cfg.seed = 777;
  const sim::Population population = sim::make_population(pop_cfg);
  const ppg::UserProfile& alice = population.users.front();
  const ppg::UserProfile& thief = population.attackers.front();
  const keystroke::Pin pin("6938");

  util::Rng rng(888);
  sim::TrialOptions options;

  // Enrollment (once, at setup).
  std::vector<core::Observation> pos, neg;
  util::Rng er = rng.fork("enroll");
  for (sim::Trial& t : sim::make_trials(alice, pin, 9, options, er)) {
    pos.push_back(observe(std::move(t)));
  }
  util::Rng pr = rng.fork("pool");
  for (sim::Trial& t :
       sim::make_third_party_pool(population, 100, options, pr)) {
    neg.push_back(observe(std::move(t)));
  }
  const core::EnrolledUser enrolled =
      core::enroll_user(pin, pos, neg, core::EnrollmentConfig{});
  std::printf("[setup]   alice enrolled with PIN %s\n\n",
              pin.digits().c_str());

  // 1. Watch put on: wear detection from 20 s of idle PPG.
  {
    util::Rng r = rng.fork("wear-on");
    ppg::CardiacProfile cardiac = alice.cardiac;
    auto idle = ppg::generate_cardiac(cardiac, 2000, 100.0, r);
    for (double& v : idle) v += r.normal(0.0, 0.1);
    const ppg::WearReport report = ppg::detect_wear(idle, 100.0);
    std::printf("[wear-on] rhythm in %zu/%zu windows, median %.0f bpm => %s\n",
                report.windows_with_rhythm, report.windows_total,
                report.median_bpm, report.worn ? "WORN" : "not worn");
  }

  // 2. One streaming authentication opens the session.
  core::StreamingAuthenticator streaming(enrolled, 100.0, 4);
  {
    util::Rng r = rng.fork("login");
    const sim::Trial t = sim::make_trial(alice, pin, options, r);
    const core::AuthResult result = stream_entry(streaming, t);
    std::printf("[login]   streaming authentication: %s (%s)\n",
                result.accepted ? "ACCEPT - session opened" : "REJECT",
                result.reason_text().c_str());
  }

  // 2b. The user tries to pay while walking: the activity detector
  // defers authentication until the wrist is static (paper section VI).
  {
    util::Rng r = rng.fork("walking");
    sim::TrialOptions walking = options;
    walking.activity = ppg::ActivityState::kWalking;
    const sim::Trial t = sim::make_trial(alice, pin, walking, r);
    const auto report =
        ppg::detect_activity(t.trace.channels[0], t.trace.rate_hz);
    std::printf("[motion]  gait band holds %.0f%% of PPG power => %s\n",
                100.0 * report.gait_fraction,
                report.state == ppg::ActivityState::kWalking
                    ? "WALKING - authentication deferred"
                    : "static");
  }

  // 3. Watch removed: the off-wrist stream shows no cardiac rhythm.
  {
    util::Rng r = rng.fork("wear-off");
    std::vector<double> off(2000);
    for (double& v : off) v = r.normal(0.0, 0.02);  // sensor facing air
    const ppg::WearReport report = ppg::detect_wear(off, 100.0);
    std::printf("[wear-off] rhythm in %zu/%zu windows => %s - session "
                "closed\n", report.windows_with_rhythm,
                report.windows_total,
                report.worn ? "still worn?!" : "NOT WORN");
  }

  // 4. A thief puts the watch on (it detects wear again - a different
  // heart, but wear detection alone cannot know that) and tries to pay
  // with alice's shoulder-surfed PIN: re-authentication fails.
  {
    util::Rng r = rng.fork("thief-wear");
    ppg::CardiacProfile cardiac = thief.cardiac;
    auto idle = ppg::generate_cardiac(cardiac, 2000, 100.0, r);
    for (double& v : idle) v += r.normal(0.0, 0.1);
    const ppg::WearReport report = ppg::detect_wear(idle, 100.0);
    std::printf("[thief]   watch worn again (median %.0f bpm) => "
                "re-authentication required\n", report.median_bpm);
    util::Rng ar = rng.fork("thief-auth");
    const sim::Trial t = sim::make_trial(thief, pin, options, ar);
    const core::AuthResult result = stream_entry(streaming, t);
    std::printf("[payment] thief types alice's PIN: %s (%s)\n",
                result.accepted ? "ACCEPTED?!" : "REJECTED",
                result.reason_text().c_str());
  }

  // Streaming health over the whole session (obs-backed stats()).
  const core::StreamingStats& stats = streaming.stats();
  std::printf("\n[stats]   %llu samples, %llu keystrokes, %llu attempts "
              "(%llu accepted, %llu timed out)\n",
              static_cast<unsigned long long>(stats.samples),
              static_cast<unsigned long long>(stats.keystrokes),
              static_cast<unsigned long long>(stats.attempts),
              static_cast<unsigned long long>(stats.accepted),
              static_cast<unsigned long long>(stats.timeouts));
  for (const auto& [reason, count] : stats.rejects_by_reason) {
    std::printf("[stats]   rejected %llu times: %s\n",
                static_cast<unsigned long long>(count),
                core::to_string(reason).c_str());
  }

  std::printf("\nWear detection scopes the trusted session; the PPG factor "
              "stops whoever picks the watch up next.\n");
  return 0;
}
