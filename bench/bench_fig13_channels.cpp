// Reproduces Fig. 13: impact of the number of PPG channels (a) and of
// each individual channel (b), on the privacy-boost configuration.
//
// Paper reference: accuracy grows markedly with channel count while the
// rejection rate stays roughly flat (13a); individually, infrared
// channels authenticate better while red channels reject better, the two
// complementing each other (13b).
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"

using namespace p2auth;

int main() {
  bench::BenchReport report("fig13_channels");
  auto base = [] {
    core::ExperimentConfig cfg;
    cfg.seed = 20231301;
    cfg.population.num_users = 10;
    cfg.privacy_boost = true;  // paper: "single handed ... with security
                               // enhancements"
    return cfg;
  };

  util::Table table13a(
      {"channels", "accuracy", "TRR (random)", "TRR (emulating)"});
  for (std::size_t n = 1; n <= 4; ++n) {
    core::ExperimentConfig cfg = base();
    cfg.sensors = ppg::SensorConfig::with_channels(n);
    bench::add_result_row(table13a, std::to_string(n),
                          run_experiment(cfg));
  }
  report.table(table13a, "table1", "Fig. 13a - performance vs number of PPG channels "
                 "(privacy boost)");
  std::printf("\n(paper: accuracy rises with channel count, rejection "
              "rate roughly flat)\n\n");

  util::Table table13b(
      {"channel", "accuracy", "TRR (random)", "TRR (emulating)"});
  const char* labels[4] = {"sensor1 infrared", "sensor1 red",
                           "sensor2 infrared", "sensor2 red"};
  for (std::size_t c = 0; c < 4; ++c) {
    core::ExperimentConfig cfg = base();
    cfg.seed += 1 + c;
    cfg.sensors = ppg::SensorConfig::single_channel(c);
    bench::add_result_row(table13b, labels[c], run_experiment(cfg));
  }
  report.table(table13b, "table2", "Fig. 13b - individual channels");
  std::printf("\n(paper: infrared better accuracy, red better rejection "
              "rate - complementary)\n");
  report.write();
  return 0;
}
