// Reproduces Fig. 16: impact of the PPG sampling rate with four channels
// (privacy-boost configuration).
//
// Paper reference: even at the lowest rate (30 Hz) authentication
// accuracy stays around 68%, and performance stops changing
// significantly as the rate increases — the system works across the
// whole range commodity wearables offer.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"

using namespace p2auth;

int main() {
  bench::BenchReport report("fig16_sampling_rate");
  util::Table table({"sampling rate (Hz)", "accuracy", "TRR (random)",
                     "TRR (emulating)"});
  for (const double rate : {30.0, 50.0, 75.0, 100.0}) {
    core::ExperimentConfig cfg;
    cfg.seed = 20231600;
    cfg.population.num_users = 8;
    cfg.privacy_boost = true;
    cfg.sensors = ppg::SensorConfig::prototype_wristband();
    cfg.sensors.rate_hz = rate;
    bench::add_result_row(table, util::format_double(rate, 0),
                          run_experiment(cfg));
  }
  report.table(table, "table1", "Fig. 16 - impact of sampling rate (4 channels, privacy "
              "boost)");
  std::printf("\n(paper: ~68%% at 30 Hz, little change above; works across "
              "commodity-wearable rates)\n");
  report.write();
  return 0;
}
