// Shared helpers for the per-figure bench binaries.
#pragma once

#include <cstdio>
#include <string>

#include "core/evaluation.hpp"
#include "util/table.hpp"

namespace p2auth::bench {

// Formats a probability as a percentage string.
inline std::string pct(double p, int precision = 1) {
  return util::format_double(100.0 * p, precision) + "%";
}

// Adds the standard (accuracy, TRR-RA, TRR-EA) row for one experiment.
inline void add_result_row(util::Table& table, const std::string& label,
                           const core::ExperimentResult& result) {
  table.begin_row()
      .cell(label)
      .cell(pct(result.mean_accuracy()))
      .cell(pct(result.mean_trr_random()))
      .cell(pct(result.mean_trr_emulating()));
}

}  // namespace p2auth::bench
