// Shared helpers for the per-figure bench binaries.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <string>
#include <utility>

#include "backend/policy.hpp"
#include "core/evaluation.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace p2auth::bench {

// Formats a probability as a percentage string.
inline std::string pct(double p, int precision = 1) {
  return util::format_double(100.0 * p, precision) + "%";
}

// Adds the standard (accuracy, TRR-RA, TRR-EA) row for one experiment.
inline void add_result_row(util::Table& table, const std::string& label,
                           const core::ExperimentResult& result) {
  table.begin_row()
      .cell(label)
      .cell(pct(result.mean_accuracy()))
      .cell(pct(result.mean_trr_random()))
      .cell(pct(result.mean_trr_emulating()));
}

// Wall-clock time of one callable on the shared Stopwatch (replaces
// per-bench std::chrono boilerplate).
template <typename F>
double timed_s(F&& f) {
  const util::Stopwatch clock;
  std::forward<F>(f)();
  return clock.seconds();
}

// Machine-readable companion to the text output: every bench builds one
// BenchReport, renders its tables through `table()` (which both prints
// the familiar ASCII form and embeds the data), and calls `write()` to
// produce BENCH_<name>.json with the run's telemetry attached.
class BenchReport {
 public:
  explicit BenchReport(std::string name) : report_(std::move(name)) {}

  // Prints `table` (as Table::print did) and embeds it under `key`.
  void table(const util::Table& table, const std::string& key,
             const std::string& title = "") {
    table.print(std::cout, title);
    report_.add_table(key, table);
  }

  // Scalar results worth tracking across commits (timings, ratios).
  void value(const std::string& key, obs::Json value) {
    report_.set(key, std::move(value));
  }

  obs::Report& report() noexcept { return report_; }

  // Concurrent benches drive their own thread/shard topology instead of
  // the shared pool's default; record the actual values so the report's
  // "threads" field means the same thing across every bench.  `shards`
  // stays unset (and unreported) for the single-tenant benches.
  void concurrency(std::size_t threads, std::size_t shards = 0) {
    threads_override_ = threads;
    shards_ = shards;
  }

  // Attaches the current metrics + span aggregates and writes
  // BENCH_<name>.json into the working directory (next to the CSVs).
  void write() {
    // Thread count the pool-backed stages ran with, so BENCH json from
    // different machines / P2AUTH_THREADS settings stay comparable.
    report_.set("threads",
                static_cast<std::uint64_t>(
                    threads_override_ != 0 ? threads_override_
                                           : util::resolve_threads(0)));
    if (shards_ != 0) {
      report_.set("shards", static_cast<std::uint64_t>(shards_));
    }
    // SIMD backend the kernels dispatched to, so numbers from hosts with
    // different ISAs (or forced P2AUTH_BACKEND runs) stay attributable.
    report_.set("backend", std::string(backend::kernels().name));
    report_.attach_metrics(obs::snapshot_metrics());
    report_.attach_span_summary(obs::snapshot_trace());
    const std::string path = "BENCH_" + report_.name() + ".json";
    report_.write_file(path);
    std::printf("\njson report written to %s\n", path.c_str());
  }

 private:
  obs::Report report_;
  std::size_t threads_override_ = 0;
  std::size_t shards_ = 0;
};

}  // namespace p2auth::bench
