// google-benchmark microbenchmarks of the pipeline's primitives: the
// per-stage costs behind the real-time claim (Table I's "lightweight"
// argument broken down by component).
//
// `--quick` skips google-benchmark and instead measures MiniRocket
// transform throughput (reference serial loop vs fast single-series vs
// tiled batch engine), writing BENCH_primitives.json for the CI perf
// gate (tools/check_bench_regression.py compares the speedup ratios
// against bench/baselines/primitives_baseline.json).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstring>
#include <optional>
#include <string_view>

#include "backend/policy.hpp"
#include "bench_common.hpp"
#include "linalg/ridge.hpp"
#include "ml/minirocket.hpp"
#include "signal/detrend.hpp"
#include "signal/dtw.hpp"
#include "signal/energy.hpp"
#include "signal/filters.hpp"
#include "signal/peaks.hpp"
#include "util/rng.hpp"

using namespace p2auth;

namespace {

std::vector<double> noise_series(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> x(n);
  for (double& v : x) v = rng.normal();
  return x;
}

void BM_MedianFilter(benchmark::State& state) {
  const auto x = noise_series(static_cast<std::size_t>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(signal::median_filter(x, 5));
  }
}
BENCHMARK(BM_MedianFilter)->Arg(600)->Arg(2400);

void BM_SavitzkyGolay(benchmark::State& state) {
  const auto x = noise_series(static_cast<std::size_t>(state.range(0)), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(signal::savitzky_golay(x, 11, 3));
  }
}
BENCHMARK(BM_SavitzkyGolay)->Arg(600)->Arg(2400);

void BM_Detrend(benchmark::State& state) {
  const auto x = noise_series(static_cast<std::size_t>(state.range(0)), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(signal::detrend_smoothness_priors(x));
  }
}
BENCHMARK(BM_Detrend)->Arg(600)->Arg(2400);

void BM_ShortTimeEnergy(benchmark::State& state) {
  const auto x = noise_series(static_cast<std::size_t>(state.range(0)), 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(signal::short_time_energy(x, 20));
  }
}
BENCHMARK(BM_ShortTimeEnergy)->Arg(600)->Arg(2400);

void BM_KeystrokeCalibration(benchmark::State& state) {
  const auto x = noise_series(600, 5);
  const std::vector<std::size_t> coarse = {100, 210, 320, 430};
  for (auto _ : state) {
    benchmark::DoNotOptimize(signal::calibrate_keystrokes(x, coarse));
  }
}
BENCHMARK(BM_KeystrokeCalibration);

void BM_MiniRocketTransform(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<ml::Series> train(4, ml::Series(n));
  util::Rng rng(6);
  for (auto& s : train) {
    for (double& v : s) v = rng.normal();
  }
  ml::MiniRocket rocket;
  rocket.fit(train, rng);
  const auto probe = noise_series(n, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rocket.transform(probe));
  }
}
BENCHMARK(BM_MiniRocketTransform)->Arg(90)->Arg(600);

void BM_DtwDistance(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto a = noise_series(n, 8);
  const auto b = noise_series(n, 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(signal::dtw_distance(a, b));
  }
}
BENCHMARK(BM_DtwDistance)->Arg(90)->Arg(600);

void BM_RidgeFit(benchmark::State& state) {
  const std::size_t n = 60, p = 2000;
  util::Rng rng(10);
  linalg::Matrix x(n, p);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    y[i] = i < n / 4 ? 1.0 : -1.0;
    for (std::size_t j = 0; j < p; ++j) x(i, j) = rng.normal();
  }
  for (auto _ : state) {
    linalg::RidgeClassifier clf;
    clf.fit(x, y);
    benchmark::DoNotOptimize(clf.bias());
  }
}
BENCHMARK(BM_RidgeFit);

// MiniRocket transform-throughput measurement for the CI perf gate.
//
// Three engines over one batch at the pipeline's realistic shape
// (90-sample scoring windows, default ~10k feature budget):
//   reference — ml::reference::transform in a serial per-series loop,
//               i.e. the pre-fast-path behaviour;
//   serial    — the fast single-series path, one series at a time;
//   batch     — transform_batch at 8 requested threads.
// The JSON reports per-transform times plus two dimensionless ratios the
// regression gate actually compares (ratios survive machine changes;
// absolute microseconds do not):
//   fast_vs_reference_speedup — single-thread algorithmic win;
//   batch_speedup             — reference serial loop vs the batch
//                               engine (the ">= 2x at 8 threads"
//                               acceptance bar).
int run_quick_transform_throughput(std::optional<backend::Isa> requested) {
  constexpr std::size_t kLength = 90;
  constexpr std::size_t kBatch = 48;
  constexpr std::size_t kThreads = 8;
  constexpr int kRepeats = 5;

  util::Rng rng(0xbe9c4ULL, 0x12ULL);
  std::vector<ml::Series> train(6, ml::Series(kLength));
  for (auto& s : train) {
    for (double& v : s) v = rng.normal();
  }
  ml::MiniRocket rocket;
  rocket.fit(train, rng);
  std::vector<ml::Series> batch(kBatch, ml::Series(kLength));
  for (auto& s : batch) {
    for (double& v : s) v = rng.normal();
  }

  // The gated three-engine comparison runs with dispatch forced to the
  // scalar backend: that table is the PR-5 autovectorized fast path, so
  // fast_vs_reference_speedup / batch_speedup measure the algorithmic
  // win alone and stay comparable across hosts whatever SIMD they have.
  backend::force_isa(backend::Isa::kScalar);

  // Warm every engine (thread scratches, pool threads) before timing.
  (void)ml::reference::transform(rocket, batch.front());
  (void)rocket.transform(std::span<const double>(batch.front()));
  (void)rocket.transform_batch(batch, kThreads);

  // Best-of-N wall clock per engine: the gate compares ratios, and
  // minima are far more stable than means on shared CI runners.
  double reference_s = 1e300, serial_s = 1e300, batch_s = 1e300;
  for (int r = 0; r < kRepeats; ++r) {
    reference_s = std::min(reference_s, bench::timed_s([&] {
      for (const auto& s : batch) {
        benchmark::DoNotOptimize(ml::reference::transform(rocket, s));
      }
    }));
    serial_s = std::min(serial_s, bench::timed_s([&] {
      for (const auto& s : batch) {
        benchmark::DoNotOptimize(
            rocket.transform(std::span<const double>(s)));
      }
    }));
    batch_s = std::min(batch_s, bench::timed_s([&] {
      benchmark::DoNotOptimize(rocket.transform_batch(batch, kThreads));
    }));
  }

  const double per = 1e6 / static_cast<double>(kBatch);
  bench::BenchReport report("primitives");
  report.value("transform_length", static_cast<std::uint64_t>(kLength));
  report.value("transform_batch_size", static_cast<std::uint64_t>(kBatch));
  report.value("transform_features",
               static_cast<std::uint64_t>(rocket.num_features()));
  report.value("requested_threads", static_cast<std::uint64_t>(kThreads));
  report.value("reference_transform_us", reference_s * per);
  report.value("serial_per_transform_us", serial_s * per);
  report.value("batch_per_transform_us", batch_s * per);
  report.value("fast_vs_reference_speedup", reference_s / serial_s);
  report.value("batch_speedup", reference_s / batch_s);
  std::printf(
      "minirocket transform (len=%zu, batch=%zu, %zu features):\n"
      "  reference serial loop : %8.1f us/transform\n"
      "  fast path, serial     : %8.1f us/transform  (%.2fx)\n"
      "  batch engine, %zu thr  : %8.1f us/transform  (%.2fx)\n",
      kLength, kBatch, rocket.num_features(), reference_s * per,
      serial_s * per, reference_s / serial_s, kThreads, batch_s * per,
      reference_s / batch_s);

  // Per-backend serial fast path on the same workload: one section per
  // ISA this host can run (or just the one --backend requested).  The
  // scalar serial time above is the denominator, so each ratio is that
  // backend's SIMD win over the autovectorized scalar kernels.  Ratios
  // are reported in the JSON but not gated — CI hardware is not pinned
  // to an ISA, so the gate only compares the scalar numbers above.
  const std::vector<backend::Isa> isas =
      requested ? std::vector<backend::Isa>{*requested}
                : backend::available_isas();
  std::printf("per-backend serial fast path:\n");
  for (const backend::Isa isa : isas) {
    backend::force_isa(isa);
    (void)rocket.transform(std::span<const double>(batch.front()));
    double isa_s = 1e300;
    for (int r = 0; r < kRepeats; ++r) {
      isa_s = std::min(isa_s, bench::timed_s([&] {
        for (const auto& s : batch) {
          benchmark::DoNotOptimize(
              rocket.transform(std::span<const double>(s)));
        }
      }));
    }
    const std::string name = backend::isa_name(isa);
    report.value("backend_" + name + "_per_transform_us", isa_s * per);
    report.value("backend_" + name + "_speedup_vs_scalar",
                 serial_s / isa_s);
    std::printf("  %-8s: %8.1f us/transform  (%.2fx vs scalar)\n",
                name.c_str(), isa_s * per, serial_s / isa_s);
  }

  // Drop the measurement forcing before write() stamps the "backend"
  // key: the report names the requested (or environment-resolved)
  // backend, not whichever ISA happened to be timed last.
  backend::force_isa(requested);
  report.write();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::optional<backend::Isa> requested;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg == "--quick") {
      quick = true;
      continue;
    }
    if (arg.rfind("--backend=", 0) == 0) {
      // Strict: a benchmark silently falling back to another ISA would
      // record numbers under the wrong label.
      const auto isa = backend::parse_isa(arg.substr(10));
      if (!isa) {
        std::fprintf(stderr,
                     "bench_primitives: unknown backend '%s' "
                     "(expected scalar|sse2|avx2|avx512|neon)\n",
                     std::string(arg.substr(10)).c_str());
        return 2;
      }
      try {
        backend::force_isa(*isa);
      } catch (const backend::BackendError& e) {
        std::fprintf(stderr, "bench_primitives: %s\n", e.what());
        return 2;
      }
      requested = *isa;
      continue;
    }
    argv[kept++] = argv[i];
  }
  argc = kept;
  if (quick) return run_quick_transform_throughput(requested);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
