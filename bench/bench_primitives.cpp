// google-benchmark microbenchmarks of the pipeline's primitives: the
// per-stage costs behind the real-time claim (Table I's "lightweight"
// argument broken down by component).
#include <benchmark/benchmark.h>

#include "linalg/ridge.hpp"
#include "ml/minirocket.hpp"
#include "signal/detrend.hpp"
#include "signal/dtw.hpp"
#include "signal/energy.hpp"
#include "signal/filters.hpp"
#include "signal/peaks.hpp"
#include "util/rng.hpp"

using namespace p2auth;

namespace {

std::vector<double> noise_series(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> x(n);
  for (double& v : x) v = rng.normal();
  return x;
}

void BM_MedianFilter(benchmark::State& state) {
  const auto x = noise_series(static_cast<std::size_t>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(signal::median_filter(x, 5));
  }
}
BENCHMARK(BM_MedianFilter)->Arg(600)->Arg(2400);

void BM_SavitzkyGolay(benchmark::State& state) {
  const auto x = noise_series(static_cast<std::size_t>(state.range(0)), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(signal::savitzky_golay(x, 11, 3));
  }
}
BENCHMARK(BM_SavitzkyGolay)->Arg(600)->Arg(2400);

void BM_Detrend(benchmark::State& state) {
  const auto x = noise_series(static_cast<std::size_t>(state.range(0)), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(signal::detrend_smoothness_priors(x));
  }
}
BENCHMARK(BM_Detrend)->Arg(600)->Arg(2400);

void BM_ShortTimeEnergy(benchmark::State& state) {
  const auto x = noise_series(static_cast<std::size_t>(state.range(0)), 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(signal::short_time_energy(x, 20));
  }
}
BENCHMARK(BM_ShortTimeEnergy)->Arg(600)->Arg(2400);

void BM_KeystrokeCalibration(benchmark::State& state) {
  const auto x = noise_series(600, 5);
  const std::vector<std::size_t> coarse = {100, 210, 320, 430};
  for (auto _ : state) {
    benchmark::DoNotOptimize(signal::calibrate_keystrokes(x, coarse));
  }
}
BENCHMARK(BM_KeystrokeCalibration);

void BM_MiniRocketTransform(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<ml::Series> train(4, ml::Series(n));
  util::Rng rng(6);
  for (auto& s : train) {
    for (double& v : s) v = rng.normal();
  }
  ml::MiniRocket rocket;
  rocket.fit(train, rng);
  const auto probe = noise_series(n, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rocket.transform(probe));
  }
}
BENCHMARK(BM_MiniRocketTransform)->Arg(90)->Arg(600);

void BM_DtwDistance(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto a = noise_series(n, 8);
  const auto b = noise_series(n, 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(signal::dtw_distance(a, b));
  }
}
BENCHMARK(BM_DtwDistance)->Arg(90)->Arg(600);

void BM_RidgeFit(benchmark::State& state) {
  const std::size_t n = 60, p = 2000;
  util::Rng rng(10);
  linalg::Matrix x(n, p);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    y[i] = i < n / 4 ? 1.0 : -1.0;
    for (std::size_t j = 0; j < p; ++j) x(i, j) = rng.normal();
  }
  for (auto _ : state) {
    linalg::RidgeClassifier clf;
    clf.fit(x, y);
    benchmark::DoNotOptimize(clf.bias());
  }
}
BENCHMARK(BM_RidgeFit);

}  // namespace

BENCHMARK_MAIN();
