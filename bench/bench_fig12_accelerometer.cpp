// Reproduces Fig. 12: PPG-based vs accelerometer-based authentication,
// both using the same ROCKET feature extraction + ridge classification.
//
// Paper reference: during (seated, nearly static) PIN entry the wrist
// barely moves, so accelerometer data carries far less identity signal
// than keystroke-induced PPG; the PPG pipeline wins on accuracy and is
// much more attack-resistant.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "core/enrollment.hpp"
#include "sim/attacks.hpp"
#include "sim/dataset.hpp"

using namespace p2auth;

namespace {

// The accelerometer "waveform": |a|-1g magnitude in a fixed window
// anchored at the first recorded keystroke (the accelerometer pipeline
// has no PPG to calibrate against).
std::vector<core::Series> accel_waveform(const sim::Trial& trial) {
  const ppg::AccelTrace& accel = *trial.accel;
  const core::Series magnitude = accel.magnitude_minus_gravity();
  const double first_s = trial.entry.events.front().recorded_time_s;
  const auto start = static_cast<long long>(
      std::llround((first_s - 0.5) * accel.rate_hz));
  const auto length =
      static_cast<std::size_t>(std::llround(6.0 * accel.rate_hz));
  core::Series window(length, 0.0);
  for (std::size_t i = 0; i < length; ++i) {
    const long long idx = start + static_cast<long long>(i);
    if (idx >= 0 && idx < static_cast<long long>(magnitude.size())) {
      window[i] = magnitude[static_cast<std::size_t>(idx)];
    }
  }
  return {window};
}

}  // namespace

int main() {
  bench::BenchReport report("fig12_accelerometer");
  core::ExperimentConfig cfg;
  cfg.seed = 20231212;
  cfg.population.num_users = 10;
  const core::ExperimentResult ppg_result = run_experiment(cfg);

  // Accelerometer pipeline: same WaveformModel (MiniRocket + ridge), fed
  // the accelerometer magnitude instead of PPG channels.
  const sim::Population population = sim::make_population(cfg.population);
  core::AuthMetrics accel_metrics;
  const auto& pins = keystroke::paper_pins();
  sim::TrialOptions options;
  options.with_accel = true;

  for (std::size_t u = 0; u < population.users.size(); ++u) {
    const auto& user = population.users[u];
    const keystroke::Pin pin = pins[u % pins.size()];
    util::Rng rng(cfg.seed ^ (0xacce1ULL * (u + 1)));

    std::vector<std::vector<core::Series>> pos, neg;
    util::Rng er = rng.fork("enroll");
    for (const auto& t : sim::make_trials(user, pin, 9, options, er)) {
      pos.push_back(accel_waveform(t));
    }
    util::Rng pr = rng.fork("pool");
    for (const auto& t :
         sim::make_third_party_pool(population, 100, options, pr)) {
      neg.push_back(accel_waveform(t));
    }
    core::WaveformModel model;
    util::Rng mr = rng.fork("model");
    model.train(pos, neg, ml::MiniRocketOptions{}, linalg::RidgeOptions{},
                mr);

    util::Rng tr = rng.fork("test");
    for (int i = 0; i < 9; ++i) {
      util::Rng r = tr.fork(10 + i);
      accel_metrics.legitimate.add(
          model.accept(accel_waveform(sim::make_trial(user, pin, options, r))));
    }
    for (int i = 0; i < 10; ++i) {
      util::Rng r = tr.fork(100 + i);
      accel_metrics.random_attack.add(model.accept(accel_waveform(
          sim::make_random_attack(
              population.attackers[i % population.attackers.size()], options,
              r))));
    }
    for (int i = 0; i < 10; ++i) {
      util::Rng r = tr.fork(200 + i);
      accel_metrics.emulating_attack.add(model.accept(
          accel_waveform(sim::make_emulating_attack(
              population.attackers[i % population.attackers.size()], user,
              pin, options, sim::EmulationOptions{}, r))));
    }
  }

  util::Table table(
      {"sensor", "accuracy", "TRR (random)", "TRR (emulating)"});
  bench::add_result_row(table, "PPG (keystroke-induced)", ppg_result);
  table.begin_row()
      .cell("accelerometer (75 Hz)")
      .cell(bench::pct(accel_metrics.accuracy()))
      .cell(bench::pct(accel_metrics.trr_random()))
      .cell(bench::pct(accel_metrics.trr_emulating()));
  report.table(table, "table1", "Fig. 12 - PPG-based vs accelerometer-based authentication "
              "(same ROCKET pipeline)");
  std::printf("\n(paper: PPG more accurate and far more attack-resistant; "
              "static wrists give the accelerometer little to work with)\n");
  report.write();
  return 0;
}
