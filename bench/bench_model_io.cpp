// Model-store I/O throughput: legacy text vs binary P2MDL001 vs mmap.
//
// Builds a registry of N synthetic users (tiny but structurally complete
// models assembled via from_parts, so generation is cheap and the store
// shape matches real enrollments), then measures:
//
//   * binary save throughput and file size;
//   * text load vs eager binary load on a subset (the text parser is the
//     reason the binary format exists — this ratio is the gated number);
//   * MappedRegistry::open on the full store — the paged path must open
//     a 100k-user registry in under 2 s (enforced here in full mode)
//     while faulting in only the name index, which the resident-set
//     delta reports;
//   * per-lookup materialize latency out of the mapping.
//
// --quick runs a smaller store for CI; --users N overrides the store
// size.  Writes BENCH_model_io.json for tools/check_bench_regression.py.
#include <cstdio>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/registry.hpp"
#include "core/serialization.hpp"
#include "io/binary.hpp"
#include "io/mmap_registry.hpp"
#include "util/resource.hpp"
#include "util/rng.hpp"

namespace {

using namespace p2auth;

// A minimal trained user: one 1-channel full model (the store-size and
// parse-cost shape of a real enrollment, scaled down ~60x so a 100k-user
// store stays a few hundred MB).
core::EnrolledUser make_user(util::Rng& rng, std::uint32_t id) {
  ml::MiniRocketOptions options;
  options.num_features = 168;
  options.max_dilations = 2;
  std::vector<double> biases(84 * 2);
  for (double& b : biases) b = rng.normal(0.0, 1.0);
  std::vector<ml::MiniRocket> channels;
  channels.push_back(ml::MiniRocket::from_parts(options, /*input_length=*/64,
                                                {1, 3}, 1, std::move(biases)));
  const std::size_t n_features = channels.back().num_features();
  auto rocket = ml::MultiChannelMiniRocket::from_parts(options,
                                                       std::move(channels));
  std::vector<double> weights(n_features);
  for (double& w : weights) w = rng.normal(0.0, 0.1);
  auto ridge = linalg::RidgeClassifier::from_parts(std::move(weights),
                                                   rng.normal(0.0, 0.5), 1.0);
  core::EnrolledUser user;
  user.pin = keystroke::Pin("1628");
  user.user_id = id;
  user.stats.full_positives = 9;
  user.full_model = core::WaveformModel::from_parts(
      std::move(rocket), std::move(ridge), rng.normal(0.0, 0.2));
  return user;
}

std::string user_name(std::uint32_t i) {
  return "user" + std::to_string(i);
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::size_t users = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") quick = true;
    if (arg == "--users" && i + 1 < argc) users = std::stoul(argv[++i]);
  }
  if (users == 0) users = quick ? 2000 : 100000;
  const std::size_t subset = std::min<std::size_t>(users, quick ? 100 : 300);

  bench::BenchReport report("model_io");
  util::Rng rng(42);
  const std::string path = "bench_model_io.p2mdl";

  // ---- build + save the full store -----------------------------------
  std::printf("building %zu synthetic users...\n", users);
  core::UserRegistry registry;
  const double build_s = bench::timed_s([&] {
    for (std::size_t i = 0; i < users; ++i) {
      registry.add(user_name(static_cast<std::uint32_t>(i)),
                   make_user(rng, static_cast<std::uint32_t>(i)));
    }
  });
  const double save_s = bench::timed_s(
      [&] { io::save_user_registry_binary_file(registry, path); });
  std::uintmax_t file_bytes = 0;
  {
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    file_bytes = static_cast<std::uintmax_t>(in.tellg());
  }
  const double file_mib = static_cast<double>(file_bytes) / (1024.0 * 1024.0);

  // ---- text vs eager binary load (subset) ----------------------------
  core::UserRegistry small;
  for (std::size_t i = 0; i < subset; ++i) {
    small.add(user_name(static_cast<std::uint32_t>(i)),
              *registry.find(user_name(static_cast<std::uint32_t>(i))));
  }
  std::stringstream text_store;
  small.save(text_store);
  std::stringstream binary_store;
  io::save_user_registry_binary(small, binary_store);

  const double text_load_s = bench::timed_s([&] {
    text_store.seekg(0);
    core::UserRegistry loaded = core::UserRegistry::load(text_store);
    if (loaded.size() != subset) std::abort();
  });
  const double binary_load_s = bench::timed_s([&] {
    binary_store.seekg(0);
    core::UserRegistry loaded =
        io::load_user_registry_binary(binary_store);
    if (loaded.size() != subset) std::abort();
  });
  const double load_speedup = text_load_s / binary_load_s;

  // ---- mmap open + lookups on the full store -------------------------
  // The registry built above still holds every user; free nothing so the
  // RSS delta below isolates what *open* adds.
  const double rss_before = util::current_rss_mib();
  io::MappedRegistry mapped = io::MappedRegistry::open(path);
  const double open_s = bench::timed_s([&] {
    mapped = io::MappedRegistry::open(path);
  });
  const double rss_after_open = util::current_rss_mib();

  const std::size_t lookups = std::min<std::size_t>(users, 200);
  std::size_t materialized = 0;
  const double lookup_s = bench::timed_s([&] {
    for (std::size_t i = 0; i < lookups; ++i) {
      const std::uint32_t pick = static_cast<std::uint32_t>(
          (i * 9973) % users);  // scattered across the arena
      const core::EnrolledUser u = mapped.materialize(user_name(pick));
      materialized += u.full_model.has_value() ? 1 : 0;
    }
  });
  const double rss_after_lookups = util::current_rss_mib();
  if (materialized != lookups) std::abort();

  util::Table table({"metric", "value"});
  table.begin_row().cell("users").cell(std::to_string(users));
  table.begin_row().cell("file size").cell(
      util::format_double(file_mib, 1) + " MiB");
  table.begin_row().cell("build").cell(util::format_double(build_s, 2) + " s");
  table.begin_row().cell("binary save").cell(
      util::format_double(save_s, 2) + " s");
  table.begin_row()
      .cell("text load (" + std::to_string(subset) + " users)")
      .cell(util::format_double(text_load_s * 1e3, 1) + " ms");
  table.begin_row()
      .cell("binary load (" + std::to_string(subset) + " users)")
      .cell(util::format_double(binary_load_s * 1e3, 1) + " ms");
  table.begin_row().cell("binary vs text speedup").cell(
      util::format_double(load_speedup, 1) + "x");
  table.begin_row().cell("mmap open").cell(
      util::format_double(open_s * 1e3, 2) + " ms");
  table.begin_row().cell("rss delta after open").cell(
      util::format_double(rss_after_open - rss_before, 1) + " MiB");
  table.begin_row()
      .cell("materialize (" + std::to_string(lookups) + " lookups)")
      .cell(util::format_double(lookup_s * 1e6 / lookups, 1) + " us/user");
  table.begin_row().cell("rss delta after lookups").cell(
      util::format_double(rss_after_lookups - rss_before, 1) + " MiB");
  report.table(table, "model_io", "Model-store I/O (" +
                                      std::string(quick ? "quick" : "full") +
                                      ")");

  report.value("users", static_cast<std::uint64_t>(users));
  report.value("file_mib", file_mib);
  report.value("save_binary_s", save_s);
  report.value("text_load_ms", text_load_s * 1e3);
  report.value("binary_load_ms", binary_load_s * 1e3);
  report.value("binary_vs_text_load_speedup", load_speedup);
  report.value("mmap_open_ms", open_s * 1e3);
  report.value("rss_open_delta_mib", rss_after_open - rss_before);
  report.value("materialize_us_per_user", lookup_s * 1e6 / lookups);
  report.value("quick", quick);
  report.write();
  std::remove(path.c_str());

  // Acceptance bounds, enforced where they are meaningful: opening the
  // full 100k-user store must stay under 2 s, and open must not fault
  // the record arena in (budget: 1/8 of the file, far above the index).
  int rc = 0;
  if (!quick && users >= 100000 && open_s >= 2.0) {
    std::fprintf(stderr, "FAIL: mmap open took %.2f s (budget 2 s)\n",
                 open_s);
    rc = 1;
  }
  if (mapped.is_mapped() &&
      rss_after_open - rss_before > std::max(16.0, file_mib / 8.0)) {
    std::fprintf(stderr,
                 "FAIL: open faulted %.1f MiB resident (file %.1f MiB)\n",
                 rss_after_open - rss_before, file_mib);
    rc = 1;
  }
  return rc;
}
