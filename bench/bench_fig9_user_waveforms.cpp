// Reproduces Fig. 9: PPG samples for PIN "1648" from four different
// users (infrared channel, mean removed).
//
// The figure's claim: the same PIN typed by different users produces
// visibly different pulse-wave sequences.  We print the pairwise
// correlation / DTW-distance matrix across users (low correlation, large
// distance => users distinguishable) and dump the waveforms to
// fig9_user_waveforms.csv.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "core/preprocess.hpp"
#include "core/segmentation.hpp"
#include "sim/dataset.hpp"
#include "signal/dtw.hpp"
#include "signal/filters.hpp"
#include "signal/stats.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

using namespace p2auth;

int main() {
  bench::BenchReport report("fig9_user_waveforms");
  sim::PopulationConfig pop_cfg;
  pop_cfg.num_users = 4;
  pop_cfg.seed = 99;
  const sim::Population population = sim::make_population(pop_cfg);
  const keystroke::Pin pin("1648");

  util::Rng rng(1648);
  sim::TrialOptions options;

  std::vector<std::vector<double>> waveforms;
  std::vector<std::string> names;
  for (const auto& user : population.users) {
    util::Rng r = rng.fork(user.name);
    const sim::Trial t = sim::make_trial(user, pin, options, r);
    core::Observation obs{t.entry, t.trace};
    const auto pre = core::preprocess_entry(obs);
    std::size_t first = pre.calibrated_indices.front();
    const auto full =
        core::extract_full_waveform(pre.filtered, first, pre.rate_hz);
    waveforms.push_back(signal::remove_mean(full[0]));  // infrared channel
    names.push_back(user.name);
  }

  util::Table table({"pair", "correlation", "normalized DTW"});
  signal::DtwOptions dtw;
  dtw.band = 60;
  for (std::size_t a = 0; a < waveforms.size(); ++a) {
    for (std::size_t b = a + 1; b < waveforms.size(); ++b) {
      table.begin_row()
          .cell(names[a] + " vs " + names[b])
          .cell(signal::pearson_correlation(waveforms[a], waveforms[b]))
          .cell(signal::dtw_distance_normalized(waveforms[a], waveforms[b],
                                                dtw));
    }
  }
  report.table(table, "table1", "Fig. 9 - PPG of PIN \"1648\" across 4 users (IR channel, "
              "mean removed)");
  std::printf("\n(low cross-user correlation => large inter-user "
              "variation, the figure's claim)\n");
  util::write_csv("fig9_user_waveforms.csv", names, waveforms);
  std::printf("full series written to fig9_user_waveforms.csv\n");
  report.write();
  return 0;
}
