// Reproduces Fig. 3: PPG measurements for different keystrokes of one
// volunteer, on both PPG sensors.
//
// The paper's figure shows, per key 0-9 (arranged by pad layout), the
// keystroke-induced waveform on sensor 1 and sensor 2.  This bench
// regenerates those waveforms, prints per-key summary statistics that
// make the figure's two claims checkable in text form —
//   (a) different keys give visibly different waveforms for one user,
//   (b) keystroke artifacts exceed heartbeat peaks —
// and dumps the full series to fig3_waveforms.csv for plotting.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "core/preprocess.hpp"
#include "core/segmentation.hpp"
#include "sim/dataset.hpp"
#include "signal/filters.hpp"
#include "signal/stats.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

using namespace p2auth;

int main() {
  bench::BenchReport report("fig3_keystroke_waveforms");
  sim::PopulationConfig pop_cfg;
  pop_cfg.num_users = 1;
  pop_cfg.seed = 33;
  const sim::Population population = sim::make_population(pop_cfg);
  const ppg::UserProfile& volunteer = population.users.front();

  util::Rng rng(808);
  sim::TrialOptions options;  // 4-channel prototype

  util::Table table({"key", "sensor1 peak|x|", "sensor1 stddev",
                     "sensor2 peak|x|", "sensor2 stddev",
                     "corr(s1, s2)"});
  std::vector<std::string> csv_names;
  std::vector<std::vector<double>> csv_columns;

  // Baseline: heartbeat-only trace (no keystroke) for the amplitude claim.
  double heartbeat_peak = 0.0;
  {
    util::Rng r = rng.fork("idle");
    // Single keystroke by the *other* hand: the watch sees heartbeat only.
    sim::TrialOptions idle = options;
    idle.input_case = keystroke::InputCase::kTwoHandedTwo;
    const sim::Trial t =
        sim::make_trial(volunteer, keystroke::Pin("5555"), idle, r);
    core::Observation obs{t.entry, t.trace};
    const auto pre = core::preprocess_entry(obs);
    const auto stats = signal::summarize(pre.detrended_reference);
    heartbeat_peak = std::max(std::abs(stats.min), std::abs(stats.max));
  }

  double min_artifact_peak = 1e9;
  std::vector<std::vector<double>> key_waveforms;
  for (char key = '0'; key <= '9'; ++key) {
    util::Rng r = rng.fork(std::string("key-") + key);
    // A PIN of the same key four times isolates that key's artifact.
    const keystroke::Pin pin(std::string(4, key));
    const sim::Trial t = sim::make_trial(volunteer, pin, options, r);
    core::Observation obs{t.entry, t.trace};
    const auto pre = core::preprocess_entry(obs);
    const auto segment = core::extract_segment(
        pre.filtered, pre.calibrated_indices[1], pre.rate_hz);
    const auto s1 = signal::remove_mean(segment[0]);  // sensor 1 infrared
    const auto s2 = signal::remove_mean(segment[2]);  // sensor 2 infrared
    const auto st1 = signal::summarize(s1);
    const auto st2 = signal::summarize(s2);
    const double peak1 = std::max(std::abs(st1.min), std::abs(st1.max));
    const double peak2 = std::max(std::abs(st2.min), std::abs(st2.max));
    min_artifact_peak = std::min(min_artifact_peak, peak1);
    table.begin_row()
        .cell(std::string(1, key))
        .cell(peak1)
        .cell(st1.stddev)
        .cell(peak2)
        .cell(st2.stddev)
        .cell(signal::pearson_correlation(s1, s2));
    csv_names.push_back(std::string("key") + key + "_sensor1");
    csv_columns.push_back(s1);
    csv_names.push_back(std::string("key") + key + "_sensor2");
    csv_columns.push_back(s2);
    key_waveforms.push_back(s1);
  }

  report.table(table, "table1", "Fig. 3 - keystroke-induced PPG per key (one volunteer, two "
              "sensors)");

  // Cross-key dissimilarity: mean pairwise correlation should be low.
  double corr_sum = 0.0;
  int pairs = 0;
  for (std::size_t a = 0; a < key_waveforms.size(); ++a) {
    for (std::size_t b = a + 1; b < key_waveforms.size(); ++b) {
      corr_sum += signal::pearson_correlation(key_waveforms[a],
                                              key_waveforms[b]);
      ++pairs;
    }
  }
  std::printf("\nheartbeat-only peak |detrended|: %.3f\n", heartbeat_peak);
  std::printf("smallest keystroke artifact peak: %.3f (should exceed the "
              "heartbeat peak)\n", min_artifact_peak);
  std::printf("mean cross-key waveform correlation: %.3f (low => keys are "
              "distinguishable)\n", corr_sum / pairs);
  util::write_csv("fig3_waveforms.csv", csv_names, csv_columns);
  std::printf("full series written to fig3_waveforms.csv\n");
  report.write();
  return 0;
}
