// Reproduces the paper's feasibility study (section III-B): the four
// empirical insights that motivate P2Auth, measured on the simulator the
// way the authors measured them on their 8-week, 5-volunteer pilot.
//
//   1. the same keystroke from different users differs strongly;
//   2. the same user's different keys differ (see also Fig. 3);
//   3. keystrokes produce larger peaks/troughs than heartbeats;
//   4. a user's patterns stay consistent across sessions, so templates
//      do not need frequent re-enrollment.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "core/preprocess.hpp"
#include "core/segmentation.hpp"
#include "sim/dataset.hpp"
#include "signal/detrend.hpp"
#include "signal/dtw.hpp"
#include "signal/stats.hpp"
#include "util/table.hpp"

using namespace p2auth;

namespace {

// Extracts the segment of keystroke `index` from a fresh trial.
core::Series keystroke_segment(const ppg::UserProfile& user,
                               const keystroke::Pin& pin, std::size_t index,
                               std::uint64_t seed) {
  util::Rng rng(seed);
  sim::TrialOptions options;
  const sim::Trial t = sim::make_trial(user, pin, options, rng);
  const auto pre = core::preprocess_entry({t.entry, t.trace});
  const auto segment = core::extract_segment(
      pre.filtered, pre.calibrated_indices.at(index), pre.rate_hz);
  return segment[0];  // sensor-1 infrared
}

}  // namespace

int main() {
  bench::BenchReport report("sec3_feasibility");
  sim::PopulationConfig pop_cfg;
  pop_cfg.num_users = 5;  // the pilot's 5 volunteers
  pop_cfg.seed = 1974;
  const sim::Population population = sim::make_population(pop_cfg);
  const keystroke::Pin pin("1628");
  signal::DtwOptions dtw;
  dtw.band = 20;

  // --- Insight 1 & 4: intra-user consistency vs inter-user difference,
  // across 8 simulated sessions. ---
  constexpr int kSessions = 8;
  std::vector<std::vector<core::Series>> per_user(population.users.size());
  for (std::size_t u = 0; u < population.users.size(); ++u) {
    for (int s = 0; s < kSessions; ++s) {
      per_user[u].push_back(keystroke_segment(
          population.users[u], pin, 1, 1000 + 100 * u + s));
    }
  }
  double intra = 0.0, inter = 0.0;
  std::size_t intra_n = 0, inter_n = 0;
  for (std::size_t u = 0; u < per_user.size(); ++u) {
    for (std::size_t a = 0; a < per_user[u].size(); ++a) {
      for (std::size_t b = a + 1; b < per_user[u].size(); ++b) {
        intra += signal::dtw_distance_normalized(per_user[u][a],
                                                 per_user[u][b], dtw);
        ++intra_n;
      }
    }
    for (std::size_t v = u + 1; v < per_user.size(); ++v) {
      for (std::size_t a = 0; a < per_user[u].size(); ++a) {
        inter += signal::dtw_distance_normalized(per_user[u][a],
                                                 per_user[v][a], dtw);
        ++inter_n;
      }
    }
  }
  intra /= static_cast<double>(intra_n);
  inter /= static_cast<double>(inter_n);

  // Early-vs-late session consistency (insight 4): compare session 0
  // templates against session 7 probes, per user.
  double early_late = 0.0;
  for (const auto& sessions : per_user) {
    early_late += signal::dtw_distance_normalized(sessions.front(),
                                                  sessions.back(), dtw);
  }
  early_late /= static_cast<double>(per_user.size());

  util::Table table({"comparison", "mean normalized DTW"});
  table.begin_row().cell("same user, across sessions (intra)").cell(intra);
  table.begin_row().cell("same user, first vs last session").cell(early_late);
  table.begin_row().cell("different users, same key (inter)").cell(inter);
  report.table(table, "table1", "Section III-B - keystroke-PPG separability over 8 sessions "
              "(5 volunteers, key '6' of PIN 1628)");
  std::printf("\ninter/intra separation ratio: %.2fx (>1 => users are "
              "distinguishable; the paper's insights 1 and 4)\n\n",
              inter / intra);

  // --- Insight 3: keystroke peaks vs heartbeat peaks, per volunteer. ---
  util::Table peaks({"volunteer", "keystroke peak", "heartbeat peak",
                     "ratio"});
  for (std::size_t u = 0; u < population.users.size(); ++u) {
    const core::Series segment =
        keystroke_segment(population.users[u], pin, 1, 5000 + u);
    const auto ks = signal::summarize(
        signal::detrend_smoothness_priors(segment));
    // Heartbeat-only: an entry where the watch hand pressed nothing near
    // keystroke 1 (two-handed entry, other hand typing).
    util::Rng rng(6000 + u);
    sim::TrialOptions quiet;
    quiet.input_case = keystroke::InputCase::kTwoHandedTwo;
    const sim::Trial t =
        sim::make_trial(population.users[u], pin, quiet, rng);
    const auto pre = core::preprocess_entry({t.entry, t.trace});
    // Find a keystroke the energy detector did NOT see: heartbeat only.
    double hb_peak = 0.0;
    for (std::size_t i = 0; i < pre.keystroke_present.size(); ++i) {
      if (pre.keystroke_present[i]) continue;
      const auto seg = core::extract_segment(
          pre.filtered, pre.calibrated_indices[i], pre.rate_hz);
      const auto st = signal::summarize(
          signal::detrend_smoothness_priors(seg[0]));
      hb_peak = std::max(hb_peak,
                         std::max(std::abs(st.min), std::abs(st.max)));
    }
    const double ks_peak = std::max(std::abs(ks.min), std::abs(ks.max));
    peaks.begin_row()
        .cell(population.users[u].name)
        .cell(ks_peak)
        .cell(hb_peak)
        .cell(hb_peak > 0 ? ks_peak / hb_peak : 0.0, 2);
  }
  report.table(peaks, "table2", "Insight 3 - keystroke artifacts exceed heartbeat peaks");
  std::printf("\n(see bench_fig3_keystroke_waveforms for insight 2: "
              "per-key differences within one user)\n");
  report.write();
  return 0;
}
