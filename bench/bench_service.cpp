// Service-layer load harness: closed- and open-loop generators over
// service::AuthService with a zipf-skewed user population and a
// configurable attacker mix.
//
// The workload is fully seeded and deterministic: M real enrollments
// are aliased across N registry names, saved to a P2MDL001 store and
// served through the mmap MappedRegistrySource, so the bench exercises
// the same resolve path production would.  Every request carries a
// hidden ground-truth digest — decision_checksum of a serial
// core::authenticate replay on the same (user, observation) — and the
// bench exits nonzero if any batched concurrent decision differs by a
// single bit.  Also probed, each with a gated invariant flag:
//
//   * bit_identical      — batched == serial replay for every request;
//   * overload_typed     — a saturated admission queue sheds with
//                          kOverloaded, answers everything, drops nothing;
//   * shutdown_drained   — stop() drains every admitted request exactly
//                          once and later submissions get kShuttingDown;
//   * decision_rate      — every admitted known-user request decided;
//   * service_vs_serial_speedup — closed-loop concurrent throughput over
//                          the serial replay of the same workload.
//
// Reported (ungated): p50/p95/p99 latency and QPS per loop mode, batch
// and LRU statistics.  --quick shrinks everything for CI; writes
// BENCH_service.json for tools/check_bench_regression.py.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/enrollment.hpp"
#include "core/registry.hpp"
#include "io/binary.hpp"
#include "service/checksum.hpp"
#include "service/service.hpp"
#include "service/source.hpp"
#include "sim/dataset.hpp"
#include "util/rng.hpp"

namespace {

using namespace p2auth;
using Clock = std::chrono::steady_clock;

double us_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::micro>(b - a).count();
}

std::string user_name(std::size_t i) { return "user" + std::to_string(i); }

// One pre-generated request plus its hidden ground truth.
struct WorkItem {
  service::AuthRequest request;
  std::uint64_t expected_checksum = 0;
};

struct Percentiles {
  double p50 = 0.0, p95 = 0.0, p99 = 0.0;
};

Percentiles percentiles(std::vector<double> latencies) {
  Percentiles out;
  if (latencies.empty()) return out;
  std::sort(latencies.begin(), latencies.end());
  const auto at = [&](double q) {
    const std::size_t idx = std::min(
        latencies.size() - 1,
        static_cast<std::size_t>(q * static_cast<double>(latencies.size())));
    return latencies[idx];
  };
  out.p50 = at(0.50);
  out.p95 = at(0.95);
  out.p99 = at(0.99);
  return out;
}

// Zipf(s) sampler over [0, n) with a precomputed CDF; rank == index so
// user0 is the hottest name.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s) {
    cdf_.reserve(n);
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      total += 1.0 / std::pow(static_cast<double>(i + 1), s);
      cdf_.push_back(total);
    }
    for (double& c : cdf_) c /= total;
  }

  std::size_t draw(util::Rng& rng) const {
    const double u = rng.uniform();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<std::size_t>(it - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

struct LoopResult {
  Percentiles lat;          // microseconds, client-observed
  double wall_s = 0.0;
  double qps = 0.0;
  std::uint64_t ok = 0, overloaded = 0, other = 0, mismatches = 0;
};

// Folds one settled response into `out`, checking its checksum against
// the hidden ground truth.
void account(const service::AuthResponse& response,
             const std::vector<WorkItem>& work, LoopResult& out) {
  switch (response.status) {
    case service::RequestStatus::kOk: {
      ++out.ok;
      const std::uint64_t expected =
          work[response.request_id].expected_checksum;
      if (service::decision_checksum(response.result) != expected) {
        ++out.mismatches;
      }
      break;
    }
    case service::RequestStatus::kOverloaded:
      ++out.overloaded;
      break;
    default:
      ++out.other;
      break;
  }
}

// Closed loop: `clients` threads partition the work, each submitting one
// request and blocking on its future before the next.  Peak sustainable
// QPS for this concurrency level.
LoopResult run_closed_loop(service::AuthService& svc,
                           const std::vector<WorkItem>& work,
                           std::size_t clients) {
  std::vector<std::vector<double>> lat(clients);
  std::vector<LoopResult> partial(clients);
  const Clock::time_point start = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      for (std::size_t i = c; i < work.size(); i += clients) {
        const Clock::time_point t0 = Clock::now();
        service::AuthResponse response =
            svc.submit(work[i].request).get();
        lat[c].push_back(us_between(t0, Clock::now()));
        account(response, work, partial[c]);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  LoopResult out;
  out.wall_s = us_between(start, Clock::now()) / 1e6;
  std::vector<double> all;
  for (std::size_t c = 0; c < clients; ++c) {
    all.insert(all.end(), lat[c].begin(), lat[c].end());
    out.ok += partial[c].ok;
    out.overloaded += partial[c].overloaded;
    out.other += partial[c].other;
    out.mismatches += partial[c].mismatches;
  }
  out.lat = percentiles(std::move(all));
  out.qps = out.wall_s > 0.0 ? static_cast<double>(out.ok) / out.wall_s : 0.0;
  return out;
}

// Open loop: one submitter paces Poisson arrivals at `rate_hz`
// regardless of completion — queueing shows up as latency (and, past
// saturation, typed shed), exactly what a closed loop hides.  Latency is
// in-service time (queue + decide) from the response itself.
LoopResult run_open_loop(service::AuthService& svc,
                         const std::vector<WorkItem>& work, double rate_hz,
                         std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::future<service::AuthResponse>> futures;
  futures.reserve(work.size());
  const Clock::time_point start = Clock::now();
  double next_s = 0.0;
  for (const WorkItem& item : work) {
    next_s += -std::log(1.0 - rng.uniform()) / rate_hz;  // exp inter-arrival
    const Clock::time_point due =
        start + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(next_s));
    std::this_thread::sleep_until(due);
    futures.push_back(svc.submit(item.request));
  }
  LoopResult out;
  std::vector<double> lat;
  for (std::future<service::AuthResponse>& f : futures) {
    const service::AuthResponse response = f.get();
    if (response.status == service::RequestStatus::kOk) {
      lat.push_back(response.queue_us + response.service_us);
    }
    account(response, work, out);
  }
  out.wall_s = us_between(start, Clock::now()) / 1e6;
  out.lat = percentiles(std::move(lat));
  out.qps = out.wall_s > 0.0 ? static_cast<double>(out.ok) / out.wall_s : 0.0;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::size_t names = 0, requests = 0;
  std::uint64_t seed = 7;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") quick = true;
    if (arg == "--users" && i + 1 < argc) names = std::stoul(argv[++i]);
    if (arg == "--requests" && i + 1 < argc) requests = std::stoul(argv[++i]);
    if (arg == "--seed" && i + 1 < argc) seed = std::stoull(argv[++i]);
  }
  const std::size_t models = quick ? 2 : 4;   // real enrollments
  if (names == 0) names = quick ? 48 : 256;   // registry names (aliased)
  if (requests == 0) requests = quick ? 48 : 400;
  const std::size_t clients = 4;
  const double attacker_frac = 0.25;

  bench::BenchReport report("service");
  util::Rng rng(seed);

  // ---- enroll M models, alias across N names, save the mmap store ----
  std::printf("enrolling %zu models, aliasing across %zu names...\n", models,
              names);
  sim::PopulationConfig pop_cfg;
  pop_cfg.num_users = models;
  pop_cfg.seed = seed;
  const sim::Population population = sim::make_population(pop_cfg);
  const std::vector<keystroke::Pin> pins = {
      keystroke::Pin("1628"), keystroke::Pin("0852"), keystroke::Pin("7391"),
      keystroke::Pin("4067")};
  sim::TrialOptions trial_options;
  std::vector<core::EnrolledUser> enrolled;
  const double enroll_s = bench::timed_s([&] {
    for (std::size_t m = 0; m < models; ++m) {
      const keystroke::Pin& pin = pins[m % pins.size()];
      std::vector<core::Observation> pos, neg;
      util::Rng er = rng.fork("enroll" + std::to_string(m));
      for (sim::Trial& t :
           sim::make_trials(population.users[m], pin, 6, trial_options, er)) {
        pos.push_back({std::move(t.entry), std::move(t.trace)});
      }
      util::Rng pr = rng.fork("pool" + std::to_string(m));
      for (sim::Trial& t :
           sim::make_third_party_pool(population, 30, trial_options, pr)) {
        neg.push_back({std::move(t.entry), std::move(t.trace)});
      }
      core::EnrollmentConfig config;
      config.rocket.num_features = quick ? 500 : 2000;
      enrolled.push_back(core::enroll_user(pin, pos, neg, config));
    }
  });
  const std::string store_path = "bench_service.p2mdl";
  core::UserRegistry registry;
  for (std::size_t i = 0; i < names; ++i) {
    core::EnrolledUser copy = enrolled[i % models];
    copy.user_id = static_cast<std::uint32_t>(1000 + i);
    registry.add(user_name(i), std::move(copy));
  }
  io::save_user_registry_binary_file(registry, store_path);
  auto source = std::make_shared<service::MappedRegistrySource>(
      std::vector<std::string>{store_path});

  // ---- pre-generate the seeded workload + hidden ground truth --------
  std::printf("generating %zu requests (zipf names, %.0f%% attacker mix)...\n",
              requests, 100.0 * attacker_frac);
  const ZipfSampler zipf(names, 1.1);
  util::Rng wl = rng.fork("workload");
  std::vector<WorkItem> work(requests);
  std::map<std::string, core::EnrolledUser> truth_cache;
  double serial_s = 0.0;
  for (std::size_t i = 0; i < requests; ++i) {
    const std::size_t name_idx = zipf.draw(wl);
    const std::size_t model_idx = name_idx % models;
    const bool attack = wl.uniform() < attacker_frac;
    const ppg::UserProfile& subject =
        attack ? population.attackers[name_idx % population.attackers.size()]
               : population.users[model_idx];
    util::Rng tr = wl.fork("trial" + std::to_string(i));
    sim::Trial trial =
        sim::make_trial(subject, pins[model_idx % pins.size()], trial_options,
                        tr);
    work[i].request.request_id = i;
    work[i].request.user = user_name(name_idx);
    work[i].request.observation = {std::move(trial.entry),
                                   std::move(trial.trace)};
    // Hidden ground truth: serial core::authenticate on the same
    // materialized user — the oracle the batched path must match bit
    // for bit.
    const std::string& name = work[i].request.user;
    auto it = truth_cache.find(name);
    if (it == truth_cache.end()) {
      it = truth_cache.emplace(name, *source->load(name)).first;
    }
    const core::EnrolledUser& user = it->second;
    serial_s += bench::timed_s([&] {
      work[i].expected_checksum = service::decision_checksum(
          core::authenticate(user, work[i].request.observation));
    });
  }

  // ---- closed loop ---------------------------------------------------
  service::ServiceOptions svc_options;
  svc_options.shards = 4;
  svc_options.lru_capacity = quick ? 16 : 64;
  svc_options.queue_capacity = 1024;
  svc_options.workers = 2;
  svc_options.max_batch = 8;
  std::printf("closed loop: %zu clients over %zu requests...\n", clients,
              requests);
  LoopResult closed;
  service::ServiceStats closed_stats;
  bool closed_drained = false;
  {
    service::AuthService svc(source, svc_options);
    closed = run_closed_loop(svc, work, clients);
    svc.stop();
    closed_stats = svc.stats();
    closed_drained =
        closed_stats.admitted ==
            closed_stats.completed + closed_stats.unknown_user &&
        svc.submit({}).get().status == service::RequestStatus::kShuttingDown;
  }

  // ---- open loop at ~70% of the measured closed-loop capacity --------
  const double rate_hz = std::max(10.0, 0.7 * closed.qps);
  std::printf("open loop: Poisson arrivals at %.1f req/s...\n", rate_hz);
  LoopResult open;
  service::ServiceStats open_stats;
  bool open_drained = false;
  {
    service::AuthService svc(source, svc_options);
    open = run_open_loop(svc, work, rate_hz, seed + 1);
    svc.stop();
    open_stats = svc.stats();
    open_drained = open_stats.admitted ==
                   open_stats.completed + open_stats.unknown_user;
  }

  // ---- overload probe: tiny queue, slow consumption, fast burst ------
  // Deterministically saturates admission: one worker deciding one
  // request at a time (milliseconds each) against a burst of
  // sub-microsecond submissions into a 2-deep queue.  Every response
  // must arrive, the excess must be typed kOverloaded, nothing may
  // block or vanish.
  std::uint64_t probe_ok = 0, probe_overloaded = 0, probe_other = 0;
  {
    service::ServiceOptions tiny = svc_options;
    tiny.queue_capacity = 2;
    tiny.workers = 1;
    tiny.max_batch = 1;
    service::AuthService svc(source, tiny);
    std::vector<std::future<service::AuthResponse>> futures;
    const std::size_t burst = std::min<std::size_t>(work.size(), 32);
    futures.reserve(burst);
    for (std::size_t i = 0; i < burst; ++i) {
      futures.push_back(svc.submit(work[i].request));
    }
    for (auto& f : futures) {
      const service::AuthResponse r = f.get();
      if (r.status == service::RequestStatus::kOk) {
        ++probe_ok;
      } else if (r.status == service::RequestStatus::kOverloaded) {
        ++probe_overloaded;
      } else {
        ++probe_other;
      }
    }
    svc.stop();
  }

  // ---- invariants (all gated at 1.0) ---------------------------------
  const bool bit_identical =
      closed.mismatches == 0 && open.mismatches == 0 &&
      closed.ok == requests;  // ample queue: nothing shed in closed loop
  const bool overload_typed = probe_overloaded > 0 && probe_other == 0 &&
                              probe_ok + probe_overloaded >= 1 &&
                              probe_ok >= 1;
  const bool shutdown_drained = closed_drained && open_drained;
  const double decided = static_cast<double>(closed.ok + open.ok);
  const double admitted_known =
      static_cast<double>(closed_stats.completed + open_stats.completed);
  const bool decision_rate_ok = decided == admitted_known && decided > 0;
  const double speedup = closed.wall_s > 0.0 ? serial_s / closed.wall_s : 0.0;

  util::Table table({"loop", "requests", "ok", "shed", "p50 us", "p95 us",
                     "p99 us", "qps"});
  table.begin_row()
      .cell("closed")
      .cell(static_cast<long long>(requests))
      .cell(static_cast<long long>(closed.ok))
      .cell(static_cast<long long>(closed.overloaded))
      .cell(closed.lat.p50, 0)
      .cell(closed.lat.p95, 0)
      .cell(closed.lat.p99, 0)
      .cell(closed.qps, 1);
  table.begin_row()
      .cell("open")
      .cell(static_cast<long long>(requests))
      .cell(static_cast<long long>(open.ok))
      .cell(static_cast<long long>(open.overloaded))
      .cell(open.lat.p50, 0)
      .cell(open.lat.p95, 0)
      .cell(open.lat.p99, 0)
      .cell(open.qps, 1);
  report.table(table, "load", "service load harness");

  std::printf(
      "\nserial replay %.2fs, closed loop %.2fs (speedup %.2fx); "
      "lru hits %llu / misses %llu, batches %llu (max %llu)\n",
      serial_s, closed.wall_s, speedup,
      static_cast<unsigned long long>(closed_stats.lru_hits),
      static_cast<unsigned long long>(closed_stats.lru_misses),
      static_cast<unsigned long long>(closed_stats.batches),
      static_cast<unsigned long long>(closed_stats.max_batch));

  report.concurrency(svc_options.workers, svc_options.shards);
  report.value("bit_identical", bit_identical ? 1.0 : 0.0);
  report.value("overload_typed", overload_typed ? 1.0 : 0.0);
  report.value("shutdown_drained", shutdown_drained ? 1.0 : 0.0);
  report.value("decision_rate", decision_rate_ok ? 1.0 : 0.0);
  report.value("service_vs_serial_speedup", speedup);
  report.value("closed_p50_us", closed.lat.p50);
  report.value("closed_p95_us", closed.lat.p95);
  report.value("closed_p99_us", closed.lat.p99);
  report.value("closed_qps", closed.qps);
  report.value("open_p50_us", open.lat.p50);
  report.value("open_p95_us", open.lat.p95);
  report.value("open_p99_us", open.lat.p99);
  report.value("open_qps", open.qps);
  report.value("open_rate_hz", rate_hz);
  report.value("enroll_s", enroll_s);
  report.value("lru_hit_rate",
               closed_stats.lru_hits + closed_stats.lru_misses > 0
                   ? static_cast<double>(closed_stats.lru_hits) /
                         static_cast<double>(closed_stats.lru_hits +
                                             closed_stats.lru_misses)
                   : 0.0);
  report.value("batches", static_cast<std::uint64_t>(closed_stats.batches));
  report.value("max_batch_observed",
               static_cast<std::uint64_t>(closed_stats.max_batch));
  report.write();
  std::remove(store_path.c_str());

  // Self-enforced: the harness is the proof, so a violated invariant is
  // a failed bench run, not just a low number in the JSON.
  bool failed = false;
  if (!bit_identical) {
    std::printf("FAIL: batched decisions diverge from serial replay "
                "(%llu + %llu mismatches)\n",
                static_cast<unsigned long long>(closed.mismatches),
                static_cast<unsigned long long>(open.mismatches));
    failed = true;
  }
  if (!overload_typed) {
    std::printf("FAIL: overload probe (ok=%llu overloaded=%llu other=%llu)\n",
                static_cast<unsigned long long>(probe_ok),
                static_cast<unsigned long long>(probe_overloaded),
                static_cast<unsigned long long>(probe_other));
    failed = true;
  }
  if (!shutdown_drained) {
    std::printf("FAIL: shutdown did not drain admitted requests exactly "
                "once\n");
    failed = true;
  }
  if (!decision_rate_ok) {
    std::printf("FAIL: decided %g != admitted known-user %g\n", decided,
                admitted_known);
    failed = true;
  }
  return failed ? 1 : 0;
}
