// Ablation studies of P2Auth's design choices (DESIGN.md section 5) plus
// the paper's Discussion-section wearing-position claim.  Not a paper
// figure: this bench justifies each pipeline stage by removing it.
//
//   1. fine-grained keystroke calibration  vs trusting coarse timestamps
//   2. detrending before short-time energy vs raw energy
//   3. PPV pooling                          vs max pooling
//   4. energy-detector threshold            (median-multiplier sweep)
//   5. results-integration policy           (paper vs all vs any)
//   6. watch on the inner wrist             vs back of the wrist
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"

using namespace p2auth;

namespace {

core::ExperimentConfig small_config(std::uint64_t seed_offset = 0) {
  core::ExperimentConfig cfg;
  cfg.seed = 20230050 + seed_offset;
  cfg.population.num_users = 6;
  cfg.test_entries = 8;
  cfg.random_attacks_per_user = 6;
  cfg.emulating_attacks_per_user = 6;
  return cfg;
}

}  // namespace

int main() {
  bench::BenchReport report("ablations");
  // --- 1 & 2: preprocessing stages (two-handed case, where segmentation
  // quality and case identification matter most). ---
  {
    util::Table table(
        {"preprocessing", "accuracy", "TRR (random)", "TRR (emulating)"});
    for (int variant = 0; variant < 3; ++variant) {
      core::ExperimentConfig cfg = small_config(1);
      cfg.test_case = keystroke::InputCase::kTwoHandedThree;
      const char* label = "full pipeline (paper)";
      if (variant == 1) {
        cfg.enrollment.preprocess.calibrate = false;
        label = "no fine-grained calibration";
      } else if (variant == 2) {
        cfg.enrollment.preprocess.detrend_before_energy = false;
        label = "no detrending before energy";
      }
      bench::add_result_row(table, label, run_experiment(cfg));
    }
    report.table(table, "table1", "Ablation 1/2 - preprocessing stages (two-handed, 3 keys)");
    std::printf("\n");
  }

  // --- 3: PPV vs max pooling (one-handed). ---
  {
    util::Table table(
        {"pooling", "accuracy", "TRR (random)", "TRR (emulating)"});
    for (const auto pooling : {ml::Pooling::kPpv, ml::Pooling::kMax}) {
      core::ExperimentConfig cfg = small_config(2);
      cfg.enrollment.rocket.pooling = pooling;
      bench::add_result_row(
          table, pooling == ml::Pooling::kPpv ? "PPV (Eq. 6)" : "max",
          run_experiment(cfg));
    }
    report.table(table, "table2", "Ablation 3 - MiniRocket pooling statistic");
    std::printf("\n");
  }

  // --- 4: energy-detector threshold sweep (two-handed-2: the case most
  // sensitive to false keystroke detection). ---
  {
    util::Table table({"median multiplier", "accuracy", "TRR (random)",
                       "TRR (emulating)"});
    for (const double mult : {0.0, 1.5, 2.6, 4.0}) {
      core::ExperimentConfig cfg = small_config(3);
      cfg.test_case = keystroke::InputCase::kTwoHandedTwo;
      cfg.enrollment.preprocess.energy.median_multiplier = mult;
      bench::add_result_row(table, util::format_double(mult, 1),
                            run_experiment(cfg));
    }
    report.table(table, "energy_threshold",
                 "Ablation 4 - energy detector threshold (two-handed, "
                 "2 keys; 0 = paper's pure mean rule)");
    std::printf("\n");
  }

  // --- 5: results-integration policy. ---
  {
    util::Table table(
        {"policy", "accuracy", "TRR (random)", "TRR (emulating)"});
    const std::pair<core::IntegrationPolicy, const char*> policies[] = {
        {core::IntegrationPolicy::kPaper, "paper (2-of-3 / all-of-2)"},
        {core::IntegrationPolicy::kAll, "all must pass"},
        {core::IntegrationPolicy::kAny, "any passes (insecure)"},
    };
    for (const auto& [policy, label] : policies) {
      core::ExperimentConfig cfg = small_config(4);
      cfg.test_case = keystroke::InputCase::kTwoHandedThree;
      cfg.auth.integration = policy;
      bench::add_result_row(table, label, run_experiment(cfg));
    }
    report.table(table, "table3", "Ablation 5 - results integration (two-handed, 3 keys)");
    std::printf("\n");
  }

  // --- 6: wearing position (paper section VI). ---
  {
    util::Table table(
        {"wearing position", "accuracy", "TRR (random)", "TRR (emulating)"});
    for (const auto wearing : {ppg::WearingPosition::kInnerWrist,
                               ppg::WearingPosition::kBackOfWrist}) {
      core::ExperimentConfig cfg = small_config(5);
      cfg.wearing = wearing;
      bench::add_result_row(
          table,
          wearing == ppg::WearingPosition::kInnerWrist ? "inner wrist"
                                                       : "back of wrist",
          run_experiment(cfg));
    }
    report.table(table, "table4", "Ablation 6 - watch wearing position (paper section VI: "
                "inner wrist is required)");
    std::printf("\n");
  }

  // --- 7: body activity during entry (paper section VI: authenticate
  // while static; walking swamps the keystroke signal with gait
  // artifacts).  Enrollment stays seated; only test-time entries change.
  {
    util::Table table(
        {"test-time activity", "accuracy", "TRR (random)",
         "TRR (emulating)"});
    for (const auto activity :
         {ppg::ActivityState::kStatic, ppg::ActivityState::kWalking}) {
      core::ExperimentConfig cfg = small_config(6);
      cfg.test_activity = activity;
      bench::add_result_row(
          table,
          activity == ppg::ActivityState::kStatic ? "static (seated)"
                                                  : "walking",
          run_experiment(cfg));
    }
    report.table(table, "table5", "Ablation 7 - body activity at entry time (paper section "
                "VI: authenticate while static)");
  }
  report.write();
  return 0;
}
