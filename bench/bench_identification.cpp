// Extension experiment (beyond the paper): 1-of-N identification.
//
// The paper evaluates verification only.  With per-user full-waveform
// models already enrolled, the registry can also answer "who is typing?"
// without a claimed identity.  This bench measures rank-1 identification
// accuracy and stranger rejection as the enrolled population grows —
// identification gets harder with N, verification does not.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "core/registry.hpp"
#include "sim/dataset.hpp"
#include "util/table.hpp"

using namespace p2auth;

namespace {

core::Observation observe(sim::Trial trial) {
  return core::Observation{std::move(trial.entry), std::move(trial.trace)};
}

}  // namespace

int main() {
  bench::BenchReport report("identification");
  sim::PopulationConfig pop_cfg;
  pop_cfg.num_users = 15;
  pop_cfg.seed = 20240101;
  const sim::Population population = sim::make_population(pop_cfg);
  const auto& pins = keystroke::paper_pins();
  sim::TrialOptions options;

  // Shared negative pool; every user enrolled once.
  util::Rng rng(515);
  std::vector<core::Observation> negatives;
  util::Rng pr = rng.fork("pool");
  for (sim::Trial& t :
       sim::make_third_party_pool(population, 60, options, pr)) {
    negatives.push_back(observe(std::move(t)));
  }
  core::EnrollmentConfig config;
  config.train_single_models = false;  // identification uses full models
  config.rocket.num_features = 4000;

  core::UserRegistry registry;
  for (std::size_t u = 0; u < population.users.size(); ++u) {
    std::vector<core::Observation> positives;
    util::Rng er = rng.fork(0xe7011ULL + u);
    for (sim::Trial& t : sim::make_trials(
             population.users[u], pins[u % pins.size()], 9, options, er)) {
      positives.push_back(observe(std::move(t)));
    }
    registry.add(population.users[u].name,
                 core::enroll_user(pins[u % pins.size()], positives,
                                   negatives, config));
  }

  util::Table table({"enrolled users (N)", "rank-1 accuracy",
                     "stranger rejection"});
  for (const std::size_t n : {2u, 5u, 10u, 15u}) {
    // Identify against the first n users only.
    core::UserRegistry subset;
    for (std::size_t u = 0; u < n; ++u) {
      subset.add(population.users[u].name,
                 *registry.find(population.users[u].name));
    }
    std::size_t correct = 0, genuine_total = 0;
    util::Rng tr = rng.fork(0x1d0000ULL + n);
    for (std::size_t u = 0; u < n; ++u) {
      for (int probe = 0; probe < 4; ++probe) {
        util::Rng r = tr.fork(100 * u + probe);
        const auto obs = observe(sim::make_trial(
            population.users[u], pins[u % pins.size()], options, r));
        const auto result = subset.identify(obs);
        if (result.detected_case != core::DetectedCase::kOneHanded) {
          continue;
        }
        ++genuine_total;
        correct += (result.identity.has_value() &&
                    *result.identity == population.users[u].name)
                       ? 1
                       : 0;
      }
    }
    std::size_t rejected = 0, stranger_total = 0;
    for (int probe = 0; probe < 12; ++probe) {
      util::Rng r = tr.fork(9000 + probe);
      const auto obs = observe(sim::make_trial(
          population.attackers[probe % population.attackers.size()],
          pins[probe % pins.size()], options, r));
      const auto result = subset.identify(obs);
      if (result.detected_case != core::DetectedCase::kOneHanded) continue;
      ++stranger_total;
      rejected += result.identity.has_value() ? 0 : 1;
    }
    table.begin_row()
        .cell(static_cast<long long>(n))
        .cell(genuine_total
                  ? util::format_double(
                        100.0 * static_cast<double>(correct) /
                            static_cast<double>(genuine_total), 1) + "%"
                  : "-")
        .cell(stranger_total
                  ? util::format_double(
                        100.0 * static_cast<double>(rejected) /
                            static_cast<double>(stranger_total), 1) + "%"
                  : "-");
  }
  report.table(table, "table1", "Extension - 1-of-N identification vs enrolled population "
              "size (rank-1)");
  std::printf("\n(not in the paper: identification degrades with N while "
              "verification does not)\n");
  report.write();
  return 0;
}
