// Observability overhead bench: proves the decision flight recorder and
// metrics instrumentation stay within the <5% hot-path latency budget.
//
// Measures the same authenticate() workload in two configurations —
// telemetry fully off (runtime switch disabled, no recorder installed)
// and fully on (metrics enabled + audit recorder draining to disk) — in
// interleaved blocks, taking the best block per mode so scheduler noise
// cancels instead of accumulating.  Exits nonzero when the measured
// overhead exceeds the budget, and emits a gated throughput ratio for
// the CI baseline (bench/baselines/obs_overhead_baseline.json).
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/authenticator.hpp"
#include "core/enrollment.hpp"
#include "obs/audit.hpp"
#include "obs/obs.hpp"
#include "sim/attacks.hpp"
#include "sim/dataset.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

using namespace p2auth;

namespace {

constexpr double kOverheadBudget = 0.05;  // 5% of baseline latency

// One timed pass over all observations (seconds).
double block_s(const core::EnrolledUser& user,
               const std::vector<core::Observation>& observations,
               std::uint64_t& accepted) {
  const util::Stopwatch clock;
  std::uint64_t block_accepted = 0;
  for (const core::Observation& obs : observations) {
    block_accepted += core::authenticate(user, obs).accepted ? 1 : 0;
  }
  accepted = block_accepted;  // identical every block; keep the last
  return clock.seconds();
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") quick = true;
  }

  bench::BenchReport report("obs_overhead");
  const int trials = quick ? 12 : 48;
  const int blocks = quick ? 5 : 9;

  // One enrolled user and a fixed observation set reused by both modes.
  sim::PopulationConfig population_cfg;
  population_cfg.num_users = 1;
  population_cfg.seed = 1723;
  const sim::Population population = sim::make_population(population_cfg);
  const keystroke::Pin pin("1470");
  util::Rng rng(20250808);

  core::EnrolledUser user;
  {
    sim::TrialOptions options;
    std::vector<core::Observation> pos, neg;
    util::Rng er = rng.fork("enroll");
    for (sim::Trial& t :
         sim::make_trials(population.users[0], pin, 6, options, er)) {
      pos.push_back({std::move(t.entry), std::move(t.trace)});
    }
    util::Rng pr = rng.fork("pool");
    for (sim::Trial& t :
         sim::make_third_party_pool(population, 30, options, pr)) {
      neg.push_back({std::move(t.entry), std::move(t.trace)});
    }
    core::EnrollmentConfig config;
    config.rocket.num_features = 2000;
    user = core::enroll_user(pin, pos, neg, config);
    user.user_id = 1;
  }

  std::vector<core::Observation> observations;
  for (int i = 0; i < trials; ++i) {
    util::Rng lr = rng.fork("legit").fork(i);
    sim::Trial t =
        sim::make_trial(population.users[0], pin, sim::TrialOptions{}, lr);
    observations.push_back({std::move(t.entry), std::move(t.trace)});
  }

  // Warm the thread-local MiniRocket scratch outside the timed region.
  (void)core::authenticate(user, observations.front());

  // Interleave off/on blocks so clock-frequency drift and scheduler
  // noise hit both modes alike; the best block per mode is the estimate.
  const std::string log_path = "bench_obs_overhead_audit.bin";
  std::uint64_t accepted_off = 0, accepted_on = 0;
  double off_s = 0.0, on_s = 0.0;
  obs::AuditStats audit_stats;
  {
    obs::AuditRecorder recorder(log_path);
    for (int b = 0; b < blocks; ++b) {
      obs::set_enabled(false);
      obs::install_audit_recorder(nullptr);
      const double off = block_s(user, observations, accepted_off);
      if (b == 0 || off < off_s) off_s = off;

      obs::set_enabled(true);
      obs::install_audit_recorder(&recorder);
      const double on = block_s(user, observations, accepted_on);
      if (b == 0 || on < on_s) on_s = on;
    }
    obs::install_audit_recorder(nullptr);
    recorder.flush();
    audit_stats = recorder.stats();
  }
  obs::set_enabled(true);
  std::remove(log_path.c_str());

  const double per_auth_off_us = 1e6 * off_s / trials;
  const double per_auth_on_us = 1e6 * on_s / trials;
  const double overhead = off_s > 0.0 ? (on_s - off_s) / off_s : 0.0;
  const double throughput_ratio = on_s > 0.0 ? off_s / on_s : 0.0;

  util::Table table({"mode", "per-auth", "accepted"});
  table.begin_row()
      .cell("telemetry off")
      .cell(util::format_double(per_auth_off_us, 1) + " us")
      .cell(std::to_string(accepted_off) + "/" + std::to_string(trials));
  table.begin_row()
      .cell("metrics + flight recorder")
      .cell(util::format_double(per_auth_on_us, 1) + " us")
      .cell(std::to_string(accepted_on) + "/" + std::to_string(trials));
  report.table(table, "overhead",
               "Observability overhead - authenticate() latency, best of " +
                   std::to_string(blocks) + " blocks x " +
                   std::to_string(trials) + " attempts");

  std::printf("overhead: %.2f%% (budget %.0f%%), ring drops: %llu\n",
              100.0 * overhead, 100.0 * kOverheadBudget,
              static_cast<unsigned long long>(audit_stats.dropped));

  report.value("per_auth_off_us", per_auth_off_us);
  report.value("per_auth_on_us", per_auth_on_us);
  report.value("overhead_fraction", overhead);
  // Gated (higher is better): off/on latency ratio; 1.0 = free telemetry,
  // 0.95 = 5.3% overhead.  CI gates with --tolerance 0.95.
  report.value("instrumented_throughput_ratio", throughput_ratio);
  report.value("audit_records_written",
               static_cast<std::uint64_t>(audit_stats.written));
  report.value("audit_records_dropped",
               static_cast<std::uint64_t>(audit_stats.dropped));
  report.value("quick", quick);
  report.write();

  bool ok = true;
  if (overhead > kOverheadBudget) {
    std::fprintf(stderr,
                 "error: observability overhead %.2f%% exceeds the %.0f%% "
                 "budget\n",
                 100.0 * overhead, 100.0 * kOverheadBudget);
    ok = false;
  }
  if (accepted_on != accepted_off) {
    std::fprintf(stderr,
                 "error: decisions changed under instrumentation "
                 "(%llu vs %llu accepts)\n",
                 static_cast<unsigned long long>(accepted_on),
                 static_cast<unsigned long long>(accepted_off));
    ok = false;
  }
  // The recorder is gated only on installation (not on the obs compile
  // switch), so records must have landed in every build flavour.
  if (audit_stats.written == 0) {
    std::fprintf(stderr, "error: flight recorder wrote no records\n");
    ok = false;
  }
  if (!ok) return 1;
  std::printf("observability stayed within the %.0f%% overhead budget\n",
              100.0 * kOverheadBudget);
  return 0;
}
