// Reproduces Table I: computational and memory overheads of the
// ROCKET-based model vs the manual-feature (DTW) model, for the
// enrollment and authentication phases.
//
// Paper reference (Intel i7-10750H):
//            enrollment          authentication
//   ROCKET   1.06 s / 378 MiB    0.302 s / 379 MiB
//   manual   104.89 s / 368 MiB  10.57 s / 368 MiB
// i.e. ROCKET needs ~1% of the training time and ~3% of the
// authentication time at comparable memory.  Absolute numbers differ on
// other hardware; the ratios are the result.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "core/enrollment.hpp"
#include "core/preprocess.hpp"
#include "core/segmentation.hpp"
#include "ml/manual_baseline.hpp"
#include "ml/minirocket.hpp"
#include "signal/dtw.hpp"
#include "sim/dataset.hpp"
#include "util/resource.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

using namespace p2auth;

namespace {

std::vector<core::Series> full_waveform(const core::Observation& obs) {
  const auto pre = core::preprocess_entry(obs);
  std::size_t first = pre.calibrated_indices.empty()
                          ? 0
                          : pre.calibrated_indices.front();
  for (std::size_t i = 0; i < pre.keystroke_present.size(); ++i) {
    if (pre.keystroke_present[i]) {
      first = pre.calibrated_indices[i];
      break;
    }
  }
  return core::extract_full_waveform(pre.filtered, first, pre.rate_hz);
}

}  // namespace

int main() {
  sim::PopulationConfig pop_cfg;
  pop_cfg.num_users = 1;
  pop_cfg.seed = 1;
  const sim::Population population = sim::make_population(pop_cfg);
  const ppg::UserProfile& user = population.users.front();
  const keystroke::Pin pin("1628");

  util::Rng rng(111);
  sim::TrialOptions options;

  std::vector<std::vector<core::Series>> pos, neg;
  util::Rng er = rng.fork("enroll");
  for (const auto& t : sim::make_trials(user, pin, 9, options, er)) {
    pos.push_back(full_waveform({t.entry, t.trace}));
  }
  util::Rng pr = rng.fork("pool");
  for (const auto& t :
       sim::make_third_party_pool(population, 100, options, pr)) {
    neg.push_back(full_waveform({t.entry, t.trace}));
  }
  util::Rng tr = rng.fork("probe");
  std::vector<std::vector<core::Series>> probes;
  for (int i = 0; i < 10; ++i) {
    util::Rng r = tr.fork(100 + i);
    const sim::Trial t = sim::make_trial(user, pin, options, r);
    probes.push_back(full_waveform({t.entry, t.trace}));
  }

  // --- ROCKET-based model. ---
  core::WaveformModel rocket_model;
  util::Rng mr = rng.fork("model");
  const double rocket_enroll_s = bench::timed_s([&] {
    rocket_model.train(pos, neg, ml::MiniRocketOptions{},
                       linalg::RidgeOptions{}, mr);
  });
  int rocket_accepts = 0;
  const double rocket_auth_s = bench::timed_s([&] {
    for (const auto& p : probes) rocket_accepts += rocket_model.accept(p);
  }) / probes.size();
  // Same probes through the tiled MiniRocket batch engine (decisions are
  // bit-identical to the serial loop); the ratio is the deployment-side
  // win when authentication requests queue up.
  const double rocket_auth_batch_s = bench::timed_s([&] {
    (void)rocket_model.decisions(probes, 8);
  }) / probes.size();
  const double rocket_mem = util::current_rss_mib();

  // --- Manual-feature (DTW) model.  Unbanded DTW, as in the reference
  // method: this is precisely where its cost explodes. ---
  ml::ManualBaselineOptions manual_options;  // band = 0: full DP
  ml::ManualBaseline manual_model(manual_options);
  const double manual_enroll_s =
      bench::timed_s([&] { manual_model.fit(pos); });
  int manual_accepts = 0;
  const double manual_auth_s = bench::timed_s([&] {
    for (const auto& p : probes) manual_accepts += manual_model.accept(p);
  }) / probes.size();
  const double manual_mem = util::current_rss_mib();

  bench::BenchReport report("table1_overheads");
  util::Table table({"model", "enroll time (s)", "auth time (s)",
                     "RSS (MiB)"});
  table.begin_row()
      .cell("ROCKET-based")
      .cell(rocket_enroll_s)
      .cell(rocket_auth_s)
      .cell(rocket_mem, 1);
  table.begin_row()
      .cell("manual feature-based")
      .cell(manual_enroll_s)
      .cell(manual_auth_s)
      .cell(manual_mem, 1);
  report.table(table, "overheads",
               "Table I - computational and memory overheads "
               "(9 enroll + 100 third-party samples, 10 probes)");
  report.value("rocket_enroll_s", rocket_enroll_s);
  report.value("rocket_auth_s", rocket_auth_s);
  report.value("rocket_auth_batch_s", rocket_auth_batch_s);
  report.value("rocket_auth_batch_speedup",
               rocket_auth_s / rocket_auth_batch_s);
  report.value("manual_enroll_s", manual_enroll_s);
  report.value("manual_auth_s", manual_auth_s);
  report.value("enroll_ratio", rocket_enroll_s / manual_enroll_s);
  report.value("auth_ratio", rocket_auth_s / manual_auth_s);
  std::printf("\nROCKET/manual time ratios: enrollment %.1f%%, "
              "authentication %.1f%% (paper: ~1%% and ~3%%)\n",
              100.0 * rocket_enroll_s / manual_enroll_s,
              100.0 * rocket_auth_s / manual_auth_s);
  std::printf("(accept sanity: rocket %d/10, manual %d/10 legitimate "
              "probes)\n", rocket_accepts, manual_accepts);
  std::printf("batched authentication: %.4f s/probe vs %.4f serial "
              "(%.1fx)\n", rocket_auth_batch_s, rocket_auth_s,
              rocket_auth_s / rocket_auth_batch_s);
  std::printf("\nNote: the paper's 100:1 enrollment ratio includes its "
              "Python implementation overhead;\nthe asymptotic gap is the "
              "reproducible part (DTW ~n^2 vs ROCKET ~n):\n\n");

  // Scaling sweep: per-probe cost vs series length.  The DTW method's
  // quadratic growth is what makes it unusable on-device.
  util::Table scaling({"series length", "ROCKET transform (ms)",
                       "DTW vs 9 templates (ms)", "ratio"});
  util::Rng srng(9);
  for (const std::size_t n : {300u, 600u, 1200u, 2400u}) {
    std::vector<core::Series> probe(1, core::Series(n));
    std::vector<std::vector<core::Series>> templates(
        9, std::vector<core::Series>(1, core::Series(n)));
    for (double& v : probe[0]) v = srng.normal();
    for (auto& t : templates) {
      for (double& v : t[0]) v = srng.normal();
    }
    ml::MiniRocketOptions ropt;
    ml::MultiChannelMiniRocket rocket(ropt);
    util::Rng fr = srng.fork(n);
    rocket.fit(templates, fr);
    util::Stopwatch sw;
    for (int rep = 0; rep < 3; ++rep) (void)rocket.transform(probe);
    const double rocket_ms = sw.milliseconds() / 3.0;
    sw.restart();
    double acc = 0.0;
    for (const auto& t : templates) {
      acc += signal::dtw_distance(probe[0], t[0]);
    }
    const double dtw_ms = sw.milliseconds();
    scaling.begin_row()
        .cell(static_cast<long long>(n))
        .cell(rocket_ms, 2)
        .cell(dtw_ms, 2)
        .cell(dtw_ms / rocket_ms, 1);
    (void)acc;
  }
  report.table(scaling, "scaling", "Per-probe cost scaling (1 channel)");
  report.write();
  return 0;
}
