// Scenario-robustness matrix: drives the full authentication pipeline
// under honest daily-life variation (sim/scenarios.hpp) — physiological
// states, motion/gain/wearing scenarios and week-indexed template aging —
// with and without guarded adaptive re-enrollment (core/adapt.hpp).
//
// Three hard invariants; the binary exits nonzero if any breaks, so it
// doubles as the CI scenario smoke test (run with --quick):
//
//   (a) FAR never rises: at every state x scenario x week point, with or
//       without adaptation, attacker acceptance stays at the clean-input
//       baseline.  Two teeth: (1) per cell and arm, a one-sided exact
//       binomial test against the pooled clean-attack baseline rate must
//       not reject at alpha = 0.01 (the emulating-attack FAR of this
//       reproduction is ~10-15% per victim — see EXPERIMENTS.md — so the
//       guard compares rates, not raw counts, and only a statistically
//       significant rise fails); (2) every attack observation is scored
//       by both arms, and an exact one-sided McNemar test over the
//       discordant pairs must not show the adaptive arm accepting
//       significantly more attackers than the frozen arm (alpha = 0.01)
//       — a loosened or poisoned refresh flips many pairs one way and
//       fails decisively, while a borderline score flipping either way
//       between two honestly different calibrated models does not.
//       Honest variation may cost legitimate acceptance, never buy an
//       attacker's.
//   (b) Adaptation recovers aging: pooled over the enrolled pilot users,
//       adaptive re-enrollment wins back at least half of the
//       aging-induced week-8 FRR increase the frozen-template arm
//       suffers over the 8-week timeline.
//   (c) Poisoning guard: a scripted poisoning attack (attacker samples
//       force-fed past the admission gates) leaves the enrolled threshold
//       bit-identical and the probe-set FAR unchanged.
#include <cmath>
#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/adapt.hpp"
#include "core/authenticator.hpp"
#include "core/enrollment.hpp"
#include "keystroke/pinpad.hpp"
#include "sim/attacks.hpp"
#include "sim/dataset.hpp"
#include "sim/scenarios.hpp"
#include "util/rng.hpp"

using namespace p2auth;

namespace {

// Per-cell outcome of one (condition, arm) evaluation.
struct CellCounts {
  int legit_accepts = 0;
  int attack_accepts = 0;
  int decided = 0;  // attempts that produced a decision (no exception)
};

// Composes a state profile onto a condition profile at a given week.
sim::ScenarioProfile compose(const sim::ScenarioProfile& condition,
                             const sim::ScenarioProfile& state,
                             std::size_t week, double aging_sigma) {
  sim::ScenarioProfile sc = condition;
  sc.state = state.state;
  sc.exertion = state.exertion;
  sc.recovery_elapsed_s = state.recovery_elapsed_s;
  sc.recovery_tau_s = state.recovery_tau_s;
  sc.week = week;
  sc.aging_sigma = aging_sigma;
  sc.name = state.name + "+" + condition.name;
  return sc;
}

core::Observation to_obs(sim::Trial&& t) {
  return core::Observation{std::move(t.entry), std::move(t.trace)};
}

// One-sided exact binomial tail P(X >= k) for X ~ Binomial(n, p).
double binom_tail_geq(int n, int k, double p) {
  if (k <= 0) return 1.0;
  if (p <= 0.0) return 0.0;
  if (p >= 1.0) return 1.0;
  double tail = 0.0;
  for (int i = k; i <= n; ++i) {
    const double log_comb = std::lgamma(n + 1.0) - std::lgamma(i + 1.0) -
                            std::lgamma(n - i + 1.0);
    tail += std::exp(log_comb + i * std::log(p) +
                     (n - i) * std::log1p(-p));
  }
  return tail;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") quick = true;
  }

  bench::BenchReport report("scenarios");
  util::Stopwatch clock;
  bool ok = true;

  // Harsher-than-default weekly drift so the 8-week frozen-template FRR
  // rise is unambiguous at bench trial counts (the default models a
  // gentler pilot).  Everything is seeded: the matrix is reproducible
  // bit-for-bit, which is what makes the hard assertions safe in CI.
  const double aging_sigma = 0.15;
  const std::size_t final_week = 8;
  const std::vector<std::size_t> timeline_weeks =
      quick ? std::vector<std::size_t>{0, 2, 4, 6, 7, 8}
            : std::vector<std::size_t>{0, 1, 2, 3, 4, 5, 6, 7, 8};
  const int timeline_trials = 12;  // per victim per week
  const std::vector<std::size_t> matrix_weeks =
      quick ? std::vector<std::size_t>{0} : std::vector<std::size_t>{0, 8};
  const int matrix_trials = quick ? 6 : 8;
  const int baseline_trials = quick ? 24 : 48;  // per victim

  // Three enrolled pilot users: template aging draws one systematic
  // drift direction per user, so a single victim's week-8 outcome is one
  // random direction — the timeline pools over several.
  const std::size_t num_victims = 3;
  sim::PopulationConfig population_cfg;
  population_cfg.num_users = num_victims;
  population_cfg.seed = 31337;
  const sim::Population population = sim::make_population(population_cfg);
  util::Rng rng(20260808);

  // --- Enrollment (clean, week 0, seated — the registration procedure).
  core::EnrollmentConfig enrollment_cfg;
  enrollment_cfg.rocket.num_features = 2000;
  sim::TrialOptions trial_options;
  std::vector<core::ExtractedEntry> negative_pool;
  {
    util::Rng pr = rng.fork("pool");
    for (sim::Trial& t :
         sim::make_third_party_pool(population, 100, trial_options, pr)) {
      negative_pool.push_back(core::extract_observation(
          to_obs(std::move(t)), enrollment_cfg));
    }
  }

  struct Victim {
    const ppg::UserProfile* profile = nullptr;
    keystroke::Pin pin;
    std::vector<core::Observation> enroll_obs;
    core::EnrolledUser frozen;
  };
  std::vector<Victim> victims(num_victims);
  for (std::size_t v = 0; v < num_victims; ++v) {
    Victim& vic = victims[v];
    vic.profile = &population.users[v];
    vic.pin = keystroke::paper_pins()[v % keystroke::paper_pins().size()];
    util::Rng er = rng.fork("enroll").fork(v);
    for (sim::Trial& t :
         sim::make_trials(*vic.profile, vic.pin, 9, trial_options, er)) {
      vic.enroll_obs.push_back(to_obs(std::move(t)));
    }
    vic.frozen = core::enroll_user(vic.pin, vic.enroll_obs, negative_pool,
                                   enrollment_cfg);
  }

  core::AdaptOptions adapt_options;
  adapt_options.enrollment = enrollment_cfg;
  adapt_options.margin_quantile = 0.05;
  adapt_options.candidate_capacity = 12;
  adapt_options.max_positives = 21;
  // Unanimous per-key consensus (4/4 voters for a 4-digit PIN): this
  // victim/PIN pairing sits at the hard end of the emulating-attack range
  // (~20% clean EA FAR), so majority consensus alone admits too many
  // attacker samples into the candidate buffer.
  adapt_options.consensus_fraction = 0.75;

  // One attempt against either arm; returns decision or counts a crash.
  const auto drive = [](auto&& score, const core::Observation& obs,
                        CellCounts& out, bool legit) {
    try {
      const bool accepted = score(obs);
      ++out.decided;
      (legit ? out.legit_accepts : out.attack_accepts) += accepted ? 1 : 0;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: pipeline threw: %s\n", e.what());
    }
  };

  // Paired attack driver: scores one attack with both arms and tracks
  // discordant pairs for the McNemar tooth of invariant (a).
  int attacks_adaptive_only = 0, attacks_frozen_only = 0;
  const auto drive_attack_pair = [&](const core::EnrolledUser& frozen,
                                     core::TemplateAdapter& adapter,
                                     const core::Observation& obs,
                                     CellCounts& frozen_out,
                                     CellCounts& adaptive_out) {
    bool frozen_accept = false, adaptive_accept = false;
    drive([&](const core::Observation& o) {
      frozen_accept = core::authenticate(frozen, o).accepted;
      return frozen_accept;
    }, obs, frozen_out, false);
    drive([&](const core::Observation& o) {
      adaptive_accept =
          adapter.attempt(o, core::TemplateAdapter::Truth::kImposter)
              .accepted;
      return adaptive_accept;
    }, obs, adaptive_out, false);
    attacks_frozen_only += (frozen_accept && !adaptive_accept) ? 1 : 0;
    attacks_adaptive_only += (adaptive_accept && !frozen_accept) ? 1 : 0;
  };

  // Shared trial generator: same observations feed both arms, so the
  // arms differ only by adaptation.  The per-index RNG forks are the
  // same in every cell (no cell-specific salt), mirroring how the fault
  // bench replays identical trial seeds at every severity: cell-to-cell
  // differences are driven by the scenario, not by fresh sampling noise.
  const auto make_cell_obs = [&](std::size_t v,
                                 const sim::ScenarioProfile& scenario,
                                 int trials,
                                 std::vector<core::Observation>& legit,
                                 std::vector<core::Observation>& attacks) {
    const Victim& vic = victims[v];
    for (int i = 0; i < trials; ++i) {
      util::Rng lr = rng.fork("legit").fork(v).fork(i);
      legit.push_back(to_obs(sim::make_scenario_trial(
          *vic.profile, vic.pin, trial_options, scenario, lr)));
      util::Rng ar = rng.fork("attack").fork(v).fork(i);
      attacks.push_back(to_obs(sim::make_scenario_emulating_attack(
          population.attackers[static_cast<std::size_t>(i) %
                               population.attackers.size()],
          *vic.profile, vic.pin, trial_options, sim::EmulationOptions{},
          scenario, ar)));
    }
  };

  // --- Clean-input FAR baseline: the enrollment-time emulating-attack
  // acceptance rate of the deployed (frozen) models on dedicated clean
  // pools, sized well above any single cell so the per-cell binomial
  // guard compares against a stable rate rather than a handful of
  // trials.  Matrix cells (single-victim) check against that victim's
  // baseline; pooled timeline rows check against the pooled baseline.
  std::vector<int> baseline_accepts(num_victims, 0);
  for (std::size_t v = 0; v < num_victims; ++v) {
    for (int i = 0; i < baseline_trials; ++i) {
      util::Rng br = rng.fork("clean-baseline").fork(v).fork(i);
      const core::Observation obs = to_obs(sim::make_emulating_attack(
          population.attackers[static_cast<std::size_t>(i) %
                               population.attackers.size()],
          *victims[v].profile, victims[v].pin, trial_options,
          sim::EmulationOptions{}, br));
      baseline_accepts[v] +=
          core::authenticate(victims[v].frozen, obs).accepted ? 1 : 0;
    }
  }
  int baseline_total = 0;
  for (const int a : baseline_accepts) baseline_total += a;
  // Laplace-smoothed baseline rates: keeps the guard meaningful even
  // when a sampled clean FAR happens to be exactly zero.
  const auto smoothed = [](int accepts, int n) {
    return (accepts + 1.0) / (n + 2.0);
  };
  const double baseline_rate_v0 = smoothed(baseline_accepts[0],
                                           baseline_trials);
  const double baseline_rate_pooled = smoothed(
      baseline_total, baseline_trials * static_cast<int>(num_victims));
  const double kFarAlpha = 0.01;

  // ==== Part A: 8-week aging timeline, frozen vs adaptive arm, pooled
  // over the enrolled victims. ====
  std::vector<core::TemplateAdapter> adapters;
  adapters.reserve(num_victims);
  for (const Victim& vic : victims) {
    adapters.emplace_back(vic.frozen, vic.enroll_obs, negative_pool,
                          adapt_options);
  }
  struct WeekRow {
    std::size_t week = 0;
    CellCounts frozen, adaptive;
    std::uint64_t refreshes = 0;
  };
  std::vector<WeekRow> timeline;
  const int timeline_n = timeline_trials * static_cast<int>(num_victims);
  for (const std::size_t week : timeline_weeks) {
    const sim::ScenarioProfile scenario = compose(
        sim::rest_scenario(), sim::rest_scenario(), week, aging_sigma);
    WeekRow row;
    row.week = week;
    for (std::size_t v = 0; v < num_victims; ++v) {
      std::vector<core::Observation> legit, attacks;
      make_cell_obs(v, scenario, timeline_trials, legit, attacks);
      for (const core::Observation& obs : legit) {
        drive([&](const core::Observation& o) {
          return core::authenticate(victims[v].frozen, o).accepted;
        }, obs, row.frozen, true);
        drive([&](const core::Observation& o) {
          return adapters[v]
              .attempt(o, core::TemplateAdapter::Truth::kGenuine)
              .accepted;
        }, obs, row.adaptive, true);
      }
      for (const core::Observation& obs : attacks) {
        drive_attack_pair(victims[v].frozen, adapters[v], obs, row.frozen,
                          row.adaptive);
      }
    }
    // Chronological refresh opportunity at each week boundary.
    for (core::TemplateAdapter& adapter : adapters) adapter.try_refresh();
    for (const core::TemplateAdapter& adapter : adapters) {
      row.refreshes += adapter.stats().refreshes;
    }
    timeline.push_back(row);
  }

  util::Table aging_table({"week", "FRR frozen", "FAR frozen",
                           "FRR adaptive", "FAR adaptive", "refreshes"});
  for (const WeekRow& row : timeline) {
    aging_table.begin_row()
        .cell(std::to_string(row.week))
        .cell(bench::pct(1.0 - static_cast<double>(row.frozen.legit_accepts) /
                                   timeline_n))
        .cell(bench::pct(static_cast<double>(row.frozen.attack_accepts) /
                         timeline_n))
        .cell(bench::pct(1.0 -
                         static_cast<double>(row.adaptive.legit_accepts) /
                             timeline_n))
        .cell(bench::pct(static_cast<double>(row.adaptive.attack_accepts) /
                         timeline_n))
        .cell(std::to_string(row.refreshes));
  }
  report.table(aging_table, "aging",
               "Template aging - frozen vs adaptive templates (" +
                   std::to_string(num_victims) + " victims x " +
                   std::to_string(timeline_trials) + " legit + " +
                   std::to_string(timeline_trials) +
                   " emulating-attack trials per week, aging sigma " +
                   util::format_double(aging_sigma, 2) + ")");

  // Invariant (b): adaptation recovers >= half the aging FRR increase.
  const WeekRow& w0 = timeline.front();
  const WeekRow& w8 = timeline.back();
  const double frr_frozen_w0 =
      1.0 - static_cast<double>(w0.frozen.legit_accepts) / timeline_n;
  const double frr_frozen_w8 =
      1.0 - static_cast<double>(w8.frozen.legit_accepts) / timeline_n;
  const double frr_adapt_w8 =
      1.0 - static_cast<double>(w8.adaptive.legit_accepts) / timeline_n;
  const double aging_increase = frr_frozen_w8 - frr_frozen_w0;
  const double recovered = frr_frozen_w8 - frr_adapt_w8;
  const double recovery_fraction =
      aging_increase > 0.0 ? recovered / aging_increase : 1.0;
  bool aging_recovery_ok = true;
  if (aging_increase <= 0.0) {
    std::fprintf(stderr,
                 "error: frozen templates did not degrade by week %zu "
                 "(FRR %.3f -> %.3f) - aging model too weak to "
                 "demonstrate recovery\n",
                 final_week, frr_frozen_w0, frr_frozen_w8);
    aging_recovery_ok = false;
  } else if (recovery_fraction < 0.5 - 1e-9) {
    std::fprintf(stderr,
                 "error: adaptation recovered only %.0f%% of the week-%zu "
                 "aging FRR increase (frozen %.3f -> %.3f, adaptive %.3f)\n",
                 100.0 * recovery_fraction, final_week, frr_frozen_w0,
                 frr_frozen_w8, frr_adapt_w8);
    aging_recovery_ok = false;
  }
  if (!aging_recovery_ok) ok = false;
  report.value("frr_frozen_week0", frr_frozen_w0);
  report.value("frr_frozen_week8", frr_frozen_w8);
  report.value("frr_adaptive_week8", frr_adapt_w8);
  report.value("aging_recovery_fraction", recovery_fraction);
  std::uint64_t total_refreshes = 0, total_rollbacks = 0;
  for (const core::TemplateAdapter& adapter : adapters) {
    total_refreshes += adapter.stats().refreshes;
    total_rollbacks += adapter.stats().rollbacks;
  }
  report.value("timeline_refreshes", total_refreshes);
  report.value("timeline_rollbacks", total_rollbacks);

  // ==== Part B: state x scenario x week matrix, both arms (victim 0).
  const std::vector<sim::ScenarioProfile> states = {
      sim::rest_scenario(), sim::elevated_scenario(),
      sim::recovering_scenario()};
  const std::vector<sim::ScenarioProfile> conditions = {
      sim::rest_scenario(),  // "rest" doubles as the no-condition column
      sim::walking_entry_scenario(), sim::typing_on_the_move_scenario(),
      sim::gain_shift_scenario(), sim::loose_strap_scenario()};

  // The adaptive arm walks the matrix chronologically (weeks ascending)
  // with a weekly refresh cadence, as in deployment: the adapter sees
  // all of a week's conditions before it may retrain (a per-cell refresh
  // would churn the model on whichever condition happened to run last).
  core::TemplateAdapter matrix_adapter(victims[0].frozen,
                                       victims[0].enroll_obs,
                                       negative_pool, adapt_options);
  struct MatrixRow {
    std::string state, condition;
    std::size_t week = 0;
    CellCounts frozen, adaptive;
  };
  std::vector<MatrixRow> matrix;
  for (const std::size_t week : matrix_weeks) {
    for (const sim::ScenarioProfile& state : states) {
      for (const sim::ScenarioProfile& condition : conditions) {
        const sim::ScenarioProfile scenario =
            compose(condition, state, week, aging_sigma);
        std::vector<core::Observation> legit, attacks;
        make_cell_obs(0, scenario, matrix_trials, legit, attacks);
        MatrixRow row;
        row.state = state.name;
        row.condition = condition.name;
        row.week = week;
        for (const core::Observation& obs : legit) {
          drive([&](const core::Observation& o) {
            return core::authenticate(victims[0].frozen, o).accepted;
          }, obs, row.frozen, true);
          drive([&](const core::Observation& o) {
            return matrix_adapter
                .attempt(o, core::TemplateAdapter::Truth::kGenuine)
                .accepted;
          }, obs, row.adaptive, true);
        }
        for (const core::Observation& obs : attacks) {
          drive_attack_pair(victims[0].frozen, matrix_adapter, obs,
                            row.frozen, row.adaptive);
        }
        matrix.push_back(std::move(row));
      }
    }
    matrix_adapter.try_refresh();
  }

  util::Table matrix_table({"state", "scenario", "week", "FRR frozen",
                            "FAR frozen", "FRR adaptive", "FAR adaptive"});
  for (const MatrixRow& row : matrix) {
    matrix_table.begin_row()
        .cell(row.state)
        .cell(row.condition)
        .cell(std::to_string(row.week))
        .cell(bench::pct(1.0 - static_cast<double>(row.frozen.legit_accepts) /
                                   matrix_trials))
        .cell(bench::pct(static_cast<double>(row.frozen.attack_accepts) /
                         matrix_trials))
        .cell(bench::pct(1.0 -
                         static_cast<double>(row.adaptive.legit_accepts) /
                             matrix_trials))
        .cell(bench::pct(static_cast<double>(row.adaptive.attack_accepts) /
                         matrix_trials));
  }
  report.table(matrix_table, "matrix",
               "Scenario matrix - state x scenario x week (" +
                   std::to_string(matrix_trials) + " legit + " +
                   std::to_string(matrix_trials) +
                   " emulating-attack trials per cell, victim 0)");

  // Invariant (a), tooth 1: no cell of either arm shows a statistically
  // significant FAR rise over the clean baseline (one-sided exact
  // binomial test at alpha = 0.01).
  bool far_never_rises = true;
  const auto check_far_cell = [&](const std::string& where, int accepts,
                                  int n, double clean_rate) {
    const double p = binom_tail_geq(n, accepts, clean_rate);
    if (p < kFarAlpha) {
      std::fprintf(stderr,
                   "error: FAR rose above the clean baseline at %s "
                   "(%d/%d accepts vs clean rate %.3f, binomial "
                   "p=%.2g < %.2g)\n",
                   where.c_str(), accepts, n, clean_rate, p, kFarAlpha);
      far_never_rises = false;
    }
  };
  for (const MatrixRow& row : matrix) {
    const std::string where = row.state + "/" + row.condition + "/week " +
                              std::to_string(row.week);
    check_far_cell(where + " [frozen]", row.frozen.attack_accepts,
                   matrix_trials, baseline_rate_v0);
    check_far_cell(where + " [adaptive]", row.adaptive.attack_accepts,
                   matrix_trials, baseline_rate_v0);
  }
  // The timeline is additional (rest, none, week w) coverage of the same
  // invariant, pooled over the victims.
  for (const WeekRow& row : timeline) {
    const std::string where = "timeline week " + std::to_string(row.week);
    check_far_cell(where + " [frozen]", row.frozen.attack_accepts,
                   timeline_n, baseline_rate_pooled);
    check_far_cell(where + " [adaptive]", row.adaptive.attack_accepts,
                   timeline_n, baseline_rate_pooled);
  }
  // Tooth 2: exact one-sided McNemar test over the discordant attack
  // pairs of the whole run.  Every attack observation was scored by both
  // arms; under the null (adaptation does not loosen the attack surface)
  // a discordant pair is equally likely to flip either way.  A poisoned
  // or loosened refresh flips many pairs adaptive-only and fails
  // decisively; a borderline score flipping either way between two
  // honestly different calibrated models does not.
  int attacks_frozen_total = 0, attacks_adaptive_total = 0;
  for (const MatrixRow& row : matrix) {
    attacks_frozen_total += row.frozen.attack_accepts;
    attacks_adaptive_total += row.adaptive.attack_accepts;
  }
  for (const WeekRow& row : timeline) {
    attacks_frozen_total += row.frozen.attack_accepts;
    attacks_adaptive_total += row.adaptive.attack_accepts;
  }
  const int discordant = attacks_adaptive_only + attacks_frozen_only;
  const double p_mcnemar =
      binom_tail_geq(discordant, attacks_adaptive_only, 0.5);
  if (p_mcnemar < kFarAlpha) {
    std::fprintf(stderr,
                 "error: adaptation bought attacker acceptances overall "
                 "(%d adaptive-only vs %d frozen-only discordant attack "
                 "pairs, McNemar p=%.2g < %.2g; pooled accepts adaptive "
                 "%d vs frozen %d)\n",
                 attacks_adaptive_only, attacks_frozen_only, p_mcnemar,
                 kFarAlpha, attacks_adaptive_total, attacks_frozen_total);
    far_never_rises = false;
  }
  if (!far_never_rises) ok = false;
  report.value("far_clean_baseline", static_cast<double>(baseline_total) /
                                         (baseline_trials *
                                          static_cast<int>(num_victims)));
  report.value("attack_accepts_frozen",
               static_cast<std::uint64_t>(attacks_frozen_total));
  report.value("attack_accepts_adaptive",
               static_cast<std::uint64_t>(attacks_adaptive_total));
  report.value("attack_discordant_adaptive_only",
               static_cast<std::uint64_t>(attacks_adaptive_only));
  report.value("attack_discordant_frozen_only",
               static_cast<std::uint64_t>(attacks_frozen_only));

  // ==== Part C: scripted poisoning attack (victim 0). ====
  // The attacker controls the candidate ingest (force_candidate bypasses
  // every admission gate) and also hammers the legitimate attempt path
  // with their own entries.  The refresh guards must leave the enrolled
  // threshold bit-identical and the probe FAR unchanged.
  bool poisoning_guard_ok = true;
  {
    core::TemplateAdapter adapter(victims[0].frozen, victims[0].enroll_obs,
                                  negative_pool, adapt_options);
    const ppg::UserProfile& attacker = population.attackers[0];
    const int poison_samples =
        static_cast<int>(adapt_options.candidate_capacity);
    std::vector<core::Observation> poison, probe;
    for (int i = 0; i < poison_samples; ++i) {
      util::Rng pr = rng.fork("poison").fork(i);
      poison.push_back(to_obs(sim::make_emulating_attack(
          attacker, *victims[0].profile, victims[0].pin, trial_options,
          sim::EmulationOptions{}, pr)));
    }
    const int probe_trials = quick ? 6 : 12;
    for (int i = 0; i < probe_trials; ++i) {
      util::Rng qr = rng.fork("probe").fork(i);
      probe.push_back(to_obs(sim::make_emulating_attack(
          population.attackers[static_cast<std::size_t>(i) %
                               population.attackers.size()],
          *victims[0].profile, victims[0].pin, trial_options,
          sim::EmulationOptions{}, qr)));
    }
    const auto probe_accepts = [&]() {
      int accepts = 0;
      for (const core::Observation& obs : probe) {
        accepts += core::authenticate(adapter.user(), obs).accepted ? 1 : 0;
      }
      return accepts;
    };

    const double threshold_before = adapter.user().full_model->threshold();
    const int far_before = probe_accepts();

    // Phase 1: realistic channel — attacker attempts flow through the
    // gated path.
    for (const core::Observation& obs : poison) {
      adapter.attempt(obs, core::TemplateAdapter::Truth::kImposter);
    }
    const core::RefreshOutcome phase1 = adapter.try_refresh();
    // Phase 2: compromised ingest — candidates injected past the gates.
    for (const core::Observation& obs : poison) {
      adapter.force_candidate(obs);
    }
    const core::RefreshOutcome phase2 = adapter.try_refresh();

    const double threshold_after = adapter.user().full_model->threshold();
    const int far_after = probe_accepts();

    if (phase1 == core::RefreshOutcome::kRefreshed ||
        phase2 == core::RefreshOutcome::kRefreshed) {
      std::fprintf(stderr,
                   "error: poisoning attack produced an accepted refresh\n");
      poisoning_guard_ok = false;
    }
    if (threshold_after != threshold_before) {
      std::fprintf(stderr,
                   "error: poisoning attack moved the enrolled threshold "
                   "(%.17g -> %.17g)\n",
                   threshold_before, threshold_after);
      poisoning_guard_ok = false;
    }
    if (far_after != far_before) {
      std::fprintf(stderr,
                   "error: poisoning attack changed the probe FAR "
                   "(%d -> %d of %d)\n",
                   far_before, far_after, probe_trials);
      poisoning_guard_ok = false;
    }
    if (!poisoning_guard_ok) ok = false;
    std::printf("poisoning attack: %d forced + %d attempted samples, "
                "threshold %.6f unchanged, probe FAR %d/%d unchanged, "
                "%llu candidates evicted at re-validation\n",
                poison_samples, poison_samples, threshold_after, far_after,
                probe_trials,
                static_cast<unsigned long long>(
                    adapter.stats().revalidation_evicted));
    report.value("poison_probe_far",
                 static_cast<double>(far_after) / probe_trials);
    report.value("poison_candidates_evicted",
                 static_cast<std::uint64_t>(
                     adapter.stats().revalidation_evicted));
  }

  // Every attempt across both parts must have produced a decision.
  int decided = 0, expected = 0;
  for (const WeekRow& row : timeline) {
    decided += row.frozen.decided + row.adaptive.decided;
    expected += 4 * timeline_n;
  }
  for (const MatrixRow& row : matrix) {
    decided += row.frozen.decided + row.adaptive.decided;
    expected += 4 * matrix_trials;
  }
  if (decided != expected) {
    std::fprintf(stderr, "error: %d/%d attempts crashed\n",
                 expected - decided, expected);
    ok = false;
  }

  // Gated invariants for bench/baselines/scenarios_baseline.json (all
  // higher-is-better booleans/ratios, matching check_bench_regression.py's
  // floor gate).
  report.value("far_never_rises", far_never_rises);
  report.value("aging_recovery_ok", aging_recovery_ok);
  report.value("poisoning_guard_ok", poisoning_guard_ok);
  report.value("decision_rate",
               expected == 0 ? 0.0
                             : static_cast<double>(decided) / expected);

  const double total_s = clock.seconds();
  std::printf("total runtime: %.1f s\n", total_s);
  report.value("total_runtime_s", total_s);
  report.value("quick", quick);
  report.write();

  if (!ok) return 1;
  std::printf("invariants hold: FAR never rose above the clean baseline, "
              "adaptation recovered %.0f%% of the week-%zu aging FRR "
              "increase, and the poisoning guard held\n",
              100.0 * recovery_fraction, final_week);
  return 0;
}
