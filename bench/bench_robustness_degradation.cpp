// Robustness-degradation sweep: drives the full authentication pipeline
// under increasing sensor-fault severity (sim/faults.hpp) and records
// how the error rates degrade.
//
// The security invariant under test: faults may cost legitimate
// acceptance (FRR rises), but must never buy an attacker acceptance —
// FAR at every severity must stay at or below the clean-input FAR, and
// every faulted attempt must still produce a decision (no crash).  The
// binary exits nonzero if either property breaks, so it doubles as the
// CI fault-injection smoke test (run with --quick under ASan+UBSan).
//
// A second check exercises the hardened streaming front-end: a stalled
// stream (watch stops pushing mid-PIN) must be rejected with
// RejectReason::kTimeout within timeout_s of injected-clock time.
#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/authenticator.hpp"
#include "core/enrollment.hpp"
#include "core/streaming.hpp"
#include "sim/attacks.hpp"
#include "sim/dataset.hpp"
#include "sim/faults.hpp"
#include "util/rng.hpp"

using namespace p2auth;

namespace {

struct SeverityResult {
  double severity = 0.0;
  std::uint64_t faults = 0;  // fault events injected across all trials
  int legit_accepts = 0;
  int attack_accepts = 0;
  // Same attack trials scored under the permissive ablation policy
  // (allow_degraded_evidence = true): documents why the strict default
  // exists — masked-channel scoring buys attacker acceptance.
  int attack_accepts_permissive = 0;
  int decided = 0;  // attempts that produced a decision (no exception)
};

// Stalled-stream check on an injected monotonic clock: push half an
// attempt, stop the stream, advance the clock past timeout_s and poll.
bool stalled_stream_times_out(const core::EnrolledUser& user,
                              bench::BenchReport& report) {
  double fake_now = 0.0;
  core::StreamingOptions options;
  options.timeout_s = 5.0;
  options.clock = [&fake_now] { return fake_now; };
  core::StreamingAuthenticator streaming(user, 100.0, 4, options);

  const std::vector<double> sample(4, 0.25);
  for (int i = 0; i < 100; ++i) streaming.push_sample(sample);  // 1 s
  streaming.push_keystroke('1', 0.5);
  fake_now = 4.9;  // just inside the limit: still pending
  if (streaming.poll().has_value()) {
    std::fprintf(stderr, "error: attempt decided before the timeout\n");
    return false;
  }
  fake_now = 5.1;  // stream never resumed; wall clock crossed timeout_s
  const auto result = streaming.poll();
  if (!result.has_value() ||
      result->reason != core::RejectReason::kTimeout) {
    std::fprintf(stderr, "error: stalled stream was not timed out\n");
    return false;
  }
  report.value("stalled_stream_reject_s", fake_now);
  report.value("stalled_stream_timeout_s", options.timeout_s);
  std::printf("stalled stream rejected (timeout) at t=%.1f s on the "
              "injected clock (timeout_s=%.1f)\n",
              fake_now, options.timeout_s);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") quick = true;
  }

  bench::BenchReport report("robustness_degradation");
  util::Stopwatch clock;

  const std::vector<double> severities =
      quick ? std::vector<double>{0.0, 0.5, 1.0}
            : std::vector<double>{0.0, 0.25, 0.5, 0.75, 1.0};
  const int trials = quick ? 6 : 16;

  // One enrolled user; the same trial seeds are replayed at every
  // severity so the curves differ only by the injected faults.
  sim::PopulationConfig population_cfg;
  population_cfg.num_users = 1;
  population_cfg.seed = 31337;
  const sim::Population population = sim::make_population(population_cfg);
  const keystroke::Pin pin("2580");
  util::Rng rng(20240831);

  core::EnrolledUser user;
  {
    sim::TrialOptions options;
    std::vector<core::Observation> pos, neg;
    util::Rng er = rng.fork("enroll");
    for (sim::Trial& t :
         sim::make_trials(population.users[0], pin, 6, options, er)) {
      pos.push_back({std::move(t.entry), std::move(t.trace)});
    }
    util::Rng pr = rng.fork("pool");
    for (sim::Trial& t :
         sim::make_third_party_pool(population, 30, options, pr)) {
      neg.push_back({std::move(t.entry), std::move(t.trace)});
    }
    core::EnrollmentConfig config;
    config.rocket.num_features = 2000;
    user = core::enroll_user(pin, pos, neg, config);
  }

  std::vector<core::Observation> legit, attacks;
  for (int i = 0; i < trials; ++i) {
    util::Rng lr = rng.fork("legit").fork(i);
    sim::Trial t =
        sim::make_trial(population.users[0], pin, sim::TrialOptions{}, lr);
    legit.push_back({std::move(t.entry), std::move(t.trace)});
    util::Rng ar = rng.fork("attack").fork(i);
    sim::Trial a = sim::make_emulating_attack(
        population.attackers[static_cast<std::size_t>(i) %
                             population.attackers.size()],
        population.users[0], pin, sim::TrialOptions{},
        sim::EmulationOptions{}, ar);
    attacks.push_back({std::move(a.entry), std::move(a.trace)});
  }

  // The fault draws reuse the same per-trial fork at every severity, so
  // the severity knob is the only thing that changes along the sweep.
  core::AuthOptions permissive;
  permissive.allow_degraded_evidence = true;
  auto run_side = [&](const std::vector<core::Observation>& side,
                      double severity, SeverityResult& out, int& accepts,
                      int* accepts_permissive) {
    for (std::size_t i = 0; i < side.size(); ++i) {
      core::Observation obs = side[i];
      if (severity > 0.0) {
        sim::FaultConfig fault_cfg;
        fault_cfg.severity = severity;
        sim::FaultPlan plan(fault_cfg, rng.fork("fault").fork(i));
        out.faults += plan.apply(obs.trace, obs.entry).total();
      }
      try {
        accepts += core::authenticate(user, obs).accepted;
        ++out.decided;
        if (accepts_permissive != nullptr) {
          *accepts_permissive +=
              core::authenticate(user, obs, permissive).accepted;
        }
      } catch (const std::exception& e) {
        std::fprintf(stderr, "error: pipeline threw at severity %.2f: %s\n",
                     severity, e.what());
      }
    }
  };

  util::Table table(
      {"severity", "faults", "FRR", "FAR", "FAR (permissive)", "decided"});
  std::vector<SeverityResult> results;
  for (const double severity : severities) {
    SeverityResult r;
    r.severity = severity;
    run_side(legit, severity, r, r.legit_accepts, nullptr);
    run_side(attacks, severity, r, r.attack_accepts,
             &r.attack_accepts_permissive);
    results.push_back(r);
    const double frr =
        1.0 - static_cast<double>(r.legit_accepts) / trials;
    const double far = static_cast<double>(r.attack_accepts) / trials;
    const double far_permissive =
        static_cast<double>(r.attack_accepts_permissive) / trials;
    table.begin_row()
        .cell(util::format_double(severity, 2))
        .cell(std::to_string(r.faults))
        .cell(bench::pct(frr))
        .cell(bench::pct(far))
        .cell(bench::pct(far_permissive))
        .cell(std::to_string(r.decided) + "/" + std::to_string(2 * trials));
  }

  report.table(table, "degradation",
               "Robustness degradation - FRR/FAR vs fault severity (" +
                   std::to_string(trials) + " legit + " +
                   std::to_string(trials) + " attack trials per point; "
                   "permissive = allow_degraded_evidence ablation)");

  // Invariant checks.
  bool ok = true;
  const int clean_far_accepts = results.front().attack_accepts;
  for (const SeverityResult& r : results) {
    if (r.decided != 2 * trials) {
      std::fprintf(stderr,
                   "error: %d/%d attempts crashed at severity %.2f\n",
                   2 * trials - r.decided, 2 * trials, r.severity);
      ok = false;
    }
    if (r.attack_accepts > clean_far_accepts) {
      std::fprintf(stderr,
                   "error: FAR rose under faults (severity %.2f: %d > "
                   "clean %d) - degradation bought attacker acceptance\n",
                   r.severity, r.attack_accepts, clean_far_accepts);
      ok = false;
    }
  }
  report.value("far_clean",
               static_cast<double>(clean_far_accepts) / trials);
  report.value("far_never_rises", ok);
  // Gated numeric invariants for the CI baseline
  // (bench/baselines/robustness_baseline.json); both are
  // higher-is-better, matching check_bench_regression.py's floor gate.
  int total_decided = 0;
  int worst_attack_accepts = 0;
  for (const SeverityResult& r : results) {
    total_decided += r.decided;
    if (r.attack_accepts > worst_attack_accepts) {
      worst_attack_accepts = r.attack_accepts;
    }
  }
  report.value("decision_rate",
               static_cast<double>(total_decided) /
                   (2.0 * trials * static_cast<double>(results.size())));
  report.value("attack_rejection_floor",
               1.0 - static_cast<double>(worst_attack_accepts) / trials);

  const bool stalled_ok = stalled_stream_times_out(user, report);
  report.value("stalled_stream_timeout_ok", stalled_ok);
  if (!stalled_ok) ok = false;

  const double total_s = clock.seconds();
  std::printf("total runtime: %.1f s\n", total_s);
  report.value("total_runtime_s", total_s);
  report.value("quick", quick);
  report.write();

  if (!ok) return 1;
  std::printf("invariant holds: FAR never rose above the clean-input FAR "
              "and every attempt produced a decision\n");
  return 0;
}
