// Reproduces Fig. 15: impact of the machine-learning model — the
// ROCKET + ridge pipeline vs ResNet-style 1-D CNN, KNN and RNN-FNN,
// trained per user on the same one-handed full waveforms.
//
// Paper reference: ROCKET reaches ~0.96 accuracy with the shortest
// computation time; the neural models are at most slightly more accepting
// of legitimate users but reject attackers worse (lower TRR = less
// secure), making ROCKET the best overall choice.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "core/enrollment.hpp"
#include "core/preprocess.hpp"
#include "core/segmentation.hpp"
#include "ml/knn.hpp"
#include "ml/nn.hpp"
#include "sim/attacks.hpp"
#include "sim/dataset.hpp"
#include "signal/resample.hpp"
#include "util/stopwatch.hpp"

using namespace p2auth;

namespace {

std::vector<core::Series> full_waveform(const core::Observation& obs) {
  const auto pre = core::preprocess_entry(obs);
  std::size_t first = pre.calibrated_indices.empty()
                          ? 0
                          : pre.calibrated_indices.front();
  for (std::size_t i = 0; i < pre.keystroke_present.size(); ++i) {
    if (pre.keystroke_present[i]) {
      first = pre.calibrated_indices[i];
      break;
    }
  }
  return core::extract_full_waveform(pre.filtered, first, pre.rate_hz);
}

// Downsampled channel-major flat vector for the neural models (600
// samples/channel is needlessly slow for tiny nets; 128 retains the
// artifact morphology).
ml::nn::Vector nn_input(const std::vector<core::Series>& waveform) {
  ml::nn::Vector flat;
  for (const auto& ch : waveform) {
    core::Series down = signal::resample_linear(
        ch, static_cast<double>(ch.size()), 128.0);
    // Per-channel z-scoring keeps raw amplitude/baseline offsets from
    // dominating the distance/gradient landscape.
    double mean = 0.0;
    for (const double v : down) mean += v;
    mean /= static_cast<double>(down.size());
    double var = 0.0;
    for (const double v : down) var += (v - mean) * (v - mean);
    const double inv_std =
        1.0 / std::max(1e-9, std::sqrt(var / static_cast<double>(down.size())));
    for (double& v : down) v = (v - mean) * inv_std;
    flat.insert(flat.end(), down.begin(), down.end());
  }
  return flat;
}

struct ModelScores {
  core::AuthMetrics metrics;
  double train_seconds = 0.0;
};

}  // namespace

int main() {
  bench::BenchReport report("fig15_ml_models");
  sim::PopulationConfig pop_cfg;
  pop_cfg.num_users = 6;
  pop_cfg.seed = 20231500;
  const sim::Population population = sim::make_population(pop_cfg);
  const auto& pins = keystroke::paper_pins();
  sim::TrialOptions options;

  enum Model { kRocket = 0, kResnet, kKnn, kRnnFnn, kNumModels };
  const char* names[kNumModels] = {"ROCKET + ridge", "ResNet (1-D CNN)",
                                   "KNN (k=3)", "RNN-FNN"};
  ModelScores scores[kNumModels];

  for (std::size_t u = 0; u < population.users.size(); ++u) {
    const auto& user = population.users[u];
    const keystroke::Pin pin = pins[u % pins.size()];
    util::Rng rng(pop_cfg.seed ^ (0xf15ULL * (u + 1)));

    std::vector<std::vector<core::Series>> pos, neg;
    util::Rng er = rng.fork("enroll");
    for (const auto& t : sim::make_trials(user, pin, 9, options, er)) {
      pos.push_back(full_waveform({t.entry, t.trace}));
    }
    util::Rng pr = rng.fork("pool");
    for (const auto& t :
         sim::make_third_party_pool(population, 60, options, pr)) {
      neg.push_back(full_waveform({t.entry, t.trace}));
    }

    // Shared probe sets.
    std::vector<std::vector<core::Series>> legit, ra, ea;
    util::Rng tr = rng.fork("test");
    for (int i = 0; i < 8; ++i) {
      util::Rng r = tr.fork(10 + i);
      const sim::Trial t = sim::make_trial(user, pin, options, r);
      legit.push_back(full_waveform({t.entry, t.trace}));
    }
    for (int i = 0; i < 8; ++i) {
      util::Rng r = tr.fork(100 + i);
      const sim::Trial t = sim::make_random_attack(
          population.attackers[i % population.attackers.size()], options, r);
      ra.push_back(full_waveform({t.entry, t.trace}));
    }
    for (int i = 0; i < 8; ++i) {
      util::Rng r = tr.fork(200 + i);
      const sim::Trial t = sim::make_emulating_attack(
          population.attackers[i % population.attackers.size()], user, pin,
          options, sim::EmulationOptions{}, r);
      ea.push_back(full_waveform({t.entry, t.trace}));
    }

    // NN-format data.
    std::vector<ml::nn::Vector> nn_train;
    std::vector<double> nn_labels;
    for (const auto& w : pos) {
      nn_train.push_back(nn_input(w));
      nn_labels.push_back(1.0);
    }
    for (const auto& w : neg) {
      nn_train.push_back(nn_input(w));
      nn_labels.push_back(-1.0);
    }
    const std::size_t channels = pos.front().size();

    util::Stopwatch clock;

    // --- ROCKET + ridge. ---
    {
      clock.restart();
      core::WaveformModel model;
      util::Rng mr = rng.fork("rocket");
      model.train(pos, neg, ml::MiniRocketOptions{}, linalg::RidgeOptions{},
                  mr);
      scores[kRocket].train_seconds += clock.seconds();
      for (const auto& w : legit) {
        scores[kRocket].metrics.legitimate.add(model.accept(w));
      }
      for (const auto& w : ra) {
        scores[kRocket].metrics.random_attack.add(model.accept(w));
      }
      for (const auto& w : ea) {
        scores[kRocket].metrics.emulating_attack.add(model.accept(w));
      }
    }
    // --- ResNet / RNN-FNN. ---
    for (const Model m : {kResnet, kRnnFnn}) {
      clock.restart();
      util::Rng mr = rng.fork(m == kResnet ? "resnet" : "rnn");
      auto net = (m == kResnet)
                     ? ml::nn::make_resnet1d(channels, 8, mr)
                     : ml::nn::make_rnn_fnn(channels, 16, mr);
      ml::nn::TrainOptions train_options;
      train_options.epochs = 30;
      net->fit(nn_train, nn_labels, train_options, mr);
      scores[m].train_seconds += clock.seconds();
      for (const auto& w : legit) {
        scores[m].metrics.legitimate.add(net->predict(nn_input(w)) > 0);
      }
      for (const auto& w : ra) {
        scores[m].metrics.random_attack.add(net->predict(nn_input(w)) > 0);
      }
      for (const auto& w : ea) {
        scores[m].metrics.emulating_attack.add(net->predict(nn_input(w)) > 0);
      }
    }
    // --- KNN on the downsampled raw series. ---
    {
      clock.restart();
      linalg::Matrix features(nn_train.size(), nn_train.front().size());
      for (std::size_t i = 0; i < nn_train.size(); ++i) {
        std::copy(nn_train[i].begin(), nn_train[i].end(),
                  features.row(i).begin());
      }
      ml::KnnClassifier knn;
      knn.fit(std::move(features), nn_labels);
      scores[kKnn].train_seconds += clock.seconds();
      for (const auto& w : legit) {
        scores[kKnn].metrics.legitimate.add(knn.predict(nn_input(w)) > 0);
      }
      for (const auto& w : ra) {
        scores[kKnn].metrics.random_attack.add(knn.predict(nn_input(w)) > 0);
      }
      for (const auto& w : ea) {
        scores[kKnn].metrics.emulating_attack.add(knn.predict(nn_input(w)) > 0);
      }
    }
  }

  util::Table table({"model", "accuracy", "TRR (random)",
                     "TRR (emulating)", "train time/user (s)"});
  for (int m = 0; m < kNumModels; ++m) {
    table.begin_row()
        .cell(names[m])
        .cell(bench::pct(scores[m].metrics.accuracy()))
        .cell(bench::pct(scores[m].metrics.trr_random()))
        .cell(bench::pct(scores[m].metrics.trr_emulating()))
        .cell(scores[m].train_seconds /
                  static_cast<double>(population.users.size()),
              2);
  }
  report.table(table, "table1", "Fig. 15 - impact of the machine-learning model (one-handed "
              "full waveforms)");
  std::printf("\n(paper: ROCKET ~0.96 accuracy with the shortest time; "
              "other models trade security for acceptance)\n");
  report.write();
  return 0;
}
