// Reproduces Fig. 14: impact of the third-party (negative training data)
// dataset size, swept from 20 to 300 samples.
//
// Paper reference: as the third-party set grows, the rejection rate of
// both attack types increases while legitimate-user accuracy decreases —
// with at most 9 positive enrollment entries, a large negative class
// swamps the classifier (their framing: overfitting to third-party
// structure).  The paper picks 100 as the operating point.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"

using namespace p2auth;

int main() {
  bench::BenchReport report("fig14_thirdparty_size");
  // The paper's classifier thresholds at zero (sklearn
  // RidgeClassifierCV), so growing the negative class drags the operating
  // point toward "reject": TRR rises, accuracy falls.  We run that
  // configuration first, then our leave-one-out threshold recentering as
  // an ablation - it decouples the operating point from the class mix and
  // removes the trade-off.
  for (const bool recenter : {false, true}) {
    util::Table table({"third-party samples", "accuracy", "TRR (random)",
                       "TRR (emulating)"});
    for (const std::size_t size : {20u, 60u, 100u, 140u, 180u, 220u, 260u,
                                   300u}) {
      core::ExperimentConfig cfg;
      cfg.seed = 20231400;
      cfg.population.num_users = 8;
      cfg.third_party_samples = size;
      cfg.enrollment.recenter_threshold = recenter;
      bench::add_result_row(table, std::to_string(size),
                            run_experiment(cfg));
    }
    report.table(table, "table1", recenter
                    ? "Fig. 14 ablation - LOO threshold recentering "
                      "(trade-off removed)"
                    : "Fig. 14 - raw zero threshold as in the paper "
                      "(one-handed)");
    std::printf("%s\n", recenter
                            ? "\n(recentered operating point: accuracy and "
                              "TRR stay flat across sizes)\n"
                            : "\n(paper: TRR increases and accuracy "
                              "decreases with size; 100 is the trade-off)\n");
  }
  report.write();
  return 0;
}
