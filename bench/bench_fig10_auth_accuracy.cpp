// Reproduces Fig. 10: authentication accuracy for the five input cases
// (one-handed, one-handed + privacy boost, two-handed with 3 keystrokes,
// two-handed with 2 keystrokes, no fixed PIN) plus the true rejection
// rates under random and emulating attacks.
//
// Paper reference values: one-handed ~98% accuracy (2.98% variance across
// cases), single-boost ~83%, double-3 ~88%, double-2 ~70%, five-case
// average ~84%; TRR ~98% for both attack types.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "util/stopwatch.hpp"

using namespace p2auth;

int main() {
  bench::BenchReport report("fig10_auth_accuracy");
  util::Stopwatch clock;
  util::Table table({"case", "accuracy", "TRR (random)", "TRR (emulating)"});

  auto base = [] {
    core::ExperimentConfig cfg;
    cfg.seed = 20230701;
    return cfg;
  };

  {
    core::ExperimentConfig cfg = base();
    bench::add_result_row(table, "one-handed (single)", run_experiment(cfg));
  }
  {
    core::ExperimentConfig cfg = base();
    cfg.privacy_boost = true;
    bench::add_result_row(table, "one-handed + boost", run_experiment(cfg));
  }
  {
    core::ExperimentConfig cfg = base();
    cfg.test_case = keystroke::InputCase::kTwoHandedThree;
    bench::add_result_row(table, "two-handed, 3 keys", run_experiment(cfg));
  }
  {
    core::ExperimentConfig cfg = base();
    cfg.test_case = keystroke::InputCase::kTwoHandedTwo;
    bench::add_result_row(table, "two-handed, 2 keys", run_experiment(cfg));
  }
  {
    core::ExperimentConfig cfg = base();
    cfg.no_pin = true;
    // No-PIN registration must cover the whole pad: all 18 collected
    // repetitions go to enrollment (3-4 entries per covering PIN).
    cfg.enroll_entries = 18;
    bench::add_result_row(table, "no fixed PIN", run_experiment(cfg));
  }

  report.table(table, "table1", "Fig. 10 - authentication accuracy and true rejection rate "
              "for 5 cases (15 users)");
  std::printf("\n(paper: one-handed ~98%%, boost ~83%%, double-3 ~88%%, "
              "double-2 ~70%%, avg ~84%%; TRR ~98%%)\n");
  const double total_s = clock.seconds();
  std::printf("total runtime: %.1f s\n", total_s);
  report.value("total_runtime_s", total_s);

  // Thread-pool speedup check: the one-handed case once serial, once on
  // the pool default, so BENCH json records the multi-core win (results
  // are bit-identical by construction, asserted here).
  core::ExperimentConfig serial_cfg = base();
  serial_cfg.threads = 1;
  core::ExperimentResult serial_result, parallel_result;
  const double serial_s =
      bench::timed_s([&] { serial_result = run_experiment(serial_cfg); });
  core::ExperimentConfig parallel_cfg = base();
  const double parallel_s =
      bench::timed_s([&] { parallel_result = run_experiment(parallel_cfg); });
  if (serial_result.pooled.legitimate.accepted !=
      parallel_result.pooled.legitimate.accepted) {
    std::fprintf(stderr, "error: thread count changed pooled results\n");
    return 1;
  }
  const std::size_t threads = util::resolve_threads(0);
  std::printf("one-handed sweep: serial %.1f s, %zu threads %.1f s "
              "(speedup %.2fx)\n",
              serial_s, threads, parallel_s, serial_s / parallel_s);
  report.value("serial_sweep_s", serial_s);
  report.value("parallel_sweep_s", parallel_s);
  report.value("parallel_speedup", serial_s / parallel_s);
  report.write();
  return 0;
}
