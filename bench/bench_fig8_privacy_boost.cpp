// Reproduces Fig. 8: per-volunteer authentication accuracy and true
// rejection rate with the privacy-boost (waveform-fusion) scheme.
//
// Paper reference: average accuracy ~83% with per-user spread (stable
// users like volunteer 8 near the top, noisy users like volunteer 11 near
// the bottom); TRR close to or above 90% for every user.
#include <iostream>

#include "bench_common.hpp"

using namespace p2auth;

int main() {
  bench::BenchReport report("fig8_privacy_boost");
  core::ExperimentConfig cfg;
  cfg.seed = 20230708;
  cfg.privacy_boost = true;
  const core::ExperimentResult result = run_experiment(cfg);

  util::Table table(
      {"volunteer", "accuracy", "TRR (random)", "TRR (emulating)"});
  for (const auto& u : result.per_user) {
    table.begin_row()
        .cell("user" + std::to_string(u.user_id))
        .cell(bench::pct(u.metrics.accuracy()))
        .cell(bench::pct(u.metrics.trr_random()))
        .cell(bench::pct(u.metrics.trr_emulating()));
  }
  table.begin_row()
      .cell("mean")
      .cell(bench::pct(result.mean_accuracy()))
      .cell(bench::pct(result.mean_trr_random()))
      .cell(bench::pct(result.mean_trr_emulating()));
  report.table(table, "table1", "Fig. 8 - per-volunteer performance of privacy boost "
              "(waveform fusion)");
  std::printf("\n(paper: mean accuracy ~83%%, TRR close to or above 90%% "
              "for all volunteers)\n");
  report.write();
  return 0;
}
