// Reproduces Fig. 5: the data-preprocessing stages on one PIN entry.
//
//   (a) median-filtered signal with the (coarse) recorded keystroke times
//   (b) signal and keystroke times after fine-grained calibration
//   (c) signal after smoothness-priors de-trending
//   (d) short-time energy of the de-trended signal
//
// The bench prints, per keystroke, the recorded index, the calibrated
// index and the ground-truth index (simulator-only knowledge), showing
// that calibration removes most of the communication-delay error; it
// also verifies the energy detector fires at every true keystroke.  The
// four stage series are dumped to fig5_preprocessing.csv.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "core/metrics.hpp"
#include "core/preprocess.hpp"
#include "sim/dataset.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

using namespace p2auth;

int main() {
  bench::BenchReport report("fig5_preprocessing");
  sim::PopulationConfig pop_cfg;
  pop_cfg.num_users = 1;
  pop_cfg.seed = 5;
  const sim::Population population = sim::make_population(pop_cfg);
  const ppg::UserProfile& user = population.users.front();

  util::Rng rng(55);
  sim::TrialOptions options;
  const sim::Trial trial =
      sim::make_trial(user, keystroke::Pin("1628"), options, rng);
  core::Observation obs{trial.entry, trial.trace};
  const auto pre = core::preprocess_entry(obs);

  util::Table table({"keystroke", "recorded idx", "calibrated idx",
                     "true press idx", "detected"});
  for (std::size_t i = 0; i < pre.recorded_indices.size(); ++i) {
    const auto true_idx = static_cast<long long>(
        std::llround(trial.entry.events[i].true_time_s * pre.rate_hz));
    table.begin_row()
        .cell(std::string(1, trial.entry.pin.at(i)))
        .cell(static_cast<long long>(pre.recorded_indices[i]))
        .cell(static_cast<long long>(pre.calibrated_indices[i]))
        .cell(true_idx)
        .cell(pre.keystroke_present[i] ? "yes" : "no");
  }
  report.table(table, "table1", "Fig. 5 - preprocessing: keystroke time calibration and "
              "energy detection (one entry)");
  std::printf("detected case: %s (entry was one-handed)\n\n",
              core::to_string(pre.detected_case).c_str());

  // Calibration quality over many keystrokes.  Both timelines carry a
  // systematic offset from the true press instant (communication delay
  // for the recorded one; neuromuscular latency + artifact rise for the
  // calibrated one); segmentation only cares about the *jitter* around
  // that offset, so that is what we compare.
  std::vector<double> rec_offsets, cal_offsets;
  std::size_t detected_keystrokes = 0, total_keystrokes = 0;
  util::Rng erng(77);
  for (int e = 0; e < 12; ++e) {
    util::Rng r = erng.fork(e);
    const sim::Trial t =
        sim::make_trial(user, keystroke::Pin("1628"), options, r);
    const auto p = core::preprocess_entry({t.entry, t.trace});
    for (std::size_t i = 0; i < p.recorded_indices.size(); ++i) {
      const double true_idx = t.entry.events[i].true_time_s * p.rate_hz;
      rec_offsets.push_back(
          static_cast<double>(p.recorded_indices[i]) - true_idx);
      cal_offsets.push_back(
          static_cast<double>(p.calibrated_indices[i]) - true_idx);
      detected_keystrokes += p.keystroke_present[i] ? 1 : 0;
      ++total_keystrokes;
    }
  }
  std::printf("over %zu keystrokes: recorded offset %.1f +- %.1f samples "
              "(communication delay),\n", total_keystrokes,
              core::mean(rec_offsets), core::stddev(rec_offsets));
  std::printf("calibrated offset %.1f +- %.1f samples (stable artifact "
              "landmark).\n", core::mean(cal_offsets),
              core::stddev(cal_offsets));
  std::printf("calibration removes the random delay when its jitter is "
              "smaller: %.1f < %.1f => %s\n", core::stddev(cal_offsets),
              core::stddev(rec_offsets),
              core::stddev(cal_offsets) < core::stddev(rec_offsets)
                  ? "yes"
                  : "no");
  std::printf("energy detector fired on %zu/%zu one-handed keystrokes\n",
              detected_keystrokes, total_keystrokes);

  // Dump the four stages for plotting.  Columns are padded to the raw
  // trace length.
  const std::size_t len = trial.trace.length();
  auto pad = [&](std::vector<double> v) {
    v.resize(len, 0.0);
    return v;
  };
  util::write_csv(
      "fig5_preprocessing.csv",
      {"raw", "filtered", "detrended", "short_time_energy"},
      {trial.trace.channels[0], pad(pre.filtered[0]),
       pad(pre.detrended_reference), pad(pre.short_time_energy)});
  std::printf("stage series written to fig5_preprocessing.csv\n");
  report.write();
  return 0;
}
