// Reproduces Fig. 17: authentication accuracy over the sampling-rate x
// channel-count grid (privacy-boost configuration).
//
// Paper reference: the system works over a wide range of rate/channel
// combinations; with more channels the model's own random factor shrinks
// and results get more stable.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"

using namespace p2auth;

int main() {
  bench::BenchReport report("fig17_rate_x_channels");
  const double rates[] = {30.0, 50.0, 75.0, 100.0};
  util::Table table({"channels", "30 Hz", "50 Hz", "75 Hz", "100 Hz"});
  for (std::size_t channels = 1; channels <= 4; ++channels) {
    table.begin_row().cell(std::to_string(channels));
    for (const double rate : rates) {
      core::ExperimentConfig cfg;
      cfg.seed = 20231700;
      cfg.population.num_users = 6;
      cfg.test_entries = 6;
      cfg.random_attacks_per_user = 4;
      cfg.emulating_attacks_per_user = 4;
      cfg.privacy_boost = true;
      cfg.sensors = ppg::SensorConfig::with_channels(channels);
      cfg.sensors.rate_hz = rate;
      table.cell(bench::pct(run_experiment(cfg).mean_accuracy()));
    }
  }
  report.table(table, "table1", "Fig. 17 - accuracy over sampling rate x channel count "
              "(privacy boost)");
  std::printf("\n(paper: usable across the whole grid; more channels => "
              "more stable)\n");
  report.write();
  return 0;
}
