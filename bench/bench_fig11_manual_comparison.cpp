// Reproduces Fig. 11: ROCKET-based P2Auth vs the manual-feature + DTW
// baseline (Shang & Wu, CNS 2019 as re-implemented by the paper), on
// one-handed keystrokes without privacy boost.
//
// Paper reference: the manual baseline reaches only ~0.62 authentication
// accuracy on keystroke-induced (small-motion) PPG, while P2Auth is
// ~0.98; the baseline's threshold tau (tuned to 1.7) is sensitive per
// user.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "core/preprocess.hpp"
#include "core/segmentation.hpp"
#include "ml/manual_baseline.hpp"
#include "sim/attacks.hpp"
#include "sim/dataset.hpp"

using namespace p2auth;

namespace {

// Extracts the per-channel full waveform the manual baseline consumes.
std::vector<core::Series> manual_waveform(const core::Observation& obs) {
  const auto pre = core::preprocess_entry(obs);
  std::size_t first = pre.calibrated_indices.empty()
                          ? 0
                          : pre.calibrated_indices.front();
  for (std::size_t i = 0; i < pre.keystroke_present.size(); ++i) {
    if (pre.keystroke_present[i]) {
      first = pre.calibrated_indices[i];
      break;
    }
  }
  return core::extract_full_waveform(pre.filtered, first, pre.rate_hz);
}

}  // namespace

int main() {
  bench::BenchReport report("fig11_manual_comparison");
  // ROCKET-based P2Auth numbers come from the standard harness.
  core::ExperimentConfig cfg;
  cfg.seed = 20231111;
  cfg.population.num_users = 10;
  const core::ExperimentResult rocket = run_experiment(cfg);

  // Manual baseline on the same kind of data: trained per user on the
  // user's enrollment waveforms only (its selling point: no third-party
  // data needed), thresholded at tau = 1.7.
  const sim::Population population = sim::make_population(cfg.population);
  core::AuthMetrics manual_metrics;
  // tau tuned on this dataset the same way the paper tuned its 1.7 on
  // theirs (the absolute value depends on the intra-class normalisation;
  // see EXPERIMENTS.md).  Legitimate probes sit at ~1.0 +- 0.08 and
  // attackers at 1.0-1.7, so no threshold separates them well - exactly
  // the method's weakness the figure demonstrates.
  ml::ManualBaselineOptions manual_options;
  manual_options.tau = 1.03;
  manual_options.dtw.band = 40;
  const auto& pins = keystroke::paper_pins();
  for (std::size_t u = 0; u < population.users.size(); ++u) {
    const auto& user = population.users[u];
    const keystroke::Pin pin = pins[u % pins.size()];
    util::Rng rng(cfg.seed ^ (0xbaddecafULL * (u + 1)));
    sim::TrialOptions options;
    std::vector<std::vector<core::Series>> enroll;
    util::Rng er = rng.fork("enroll");
    for (const auto& t : sim::make_trials(user, pin, 9, options, er)) {
      enroll.push_back(manual_waveform({t.entry, t.trace}));
    }
    ml::ManualBaseline model(manual_options);
    model.fit(enroll);

    util::Rng tr = rng.fork("test");
    for (int i = 0; i < 9; ++i) {
      util::Rng r = tr.fork(10 + i);
      const sim::Trial t = sim::make_trial(user, pin, options, r);
      manual_metrics.legitimate.add(
          model.accept(manual_waveform({t.entry, t.trace})));
    }
    for (int i = 0; i < 10; ++i) {
      util::Rng r = tr.fork(100 + i);
      const sim::Trial t = sim::make_random_attack(
          population.attackers[i % population.attackers.size()], options, r);
      manual_metrics.random_attack.add(
          model.accept(manual_waveform({t.entry, t.trace})));
    }
    for (int i = 0; i < 10; ++i) {
      util::Rng r = tr.fork(200 + i);
      const sim::Trial t = sim::make_emulating_attack(
          population.attackers[i % population.attackers.size()], user, pin,
          options, sim::EmulationOptions{}, r);
      manual_metrics.emulating_attack.add(
          model.accept(manual_waveform({t.entry, t.trace})));
    }
  }

  util::Table table(
      {"method", "accuracy", "TRR (random)", "TRR (emulating)"});
  bench::add_result_row(table, "ROCKET-based (P2Auth)", rocket);
  table.begin_row()
      .cell("manual features + DTW (tau=1.03)")
      .cell(bench::pct(manual_metrics.accuracy()))
      .cell(bench::pct(manual_metrics.trr_random()))
      .cell(bench::pct(manual_metrics.trr_emulating()));
  report.table(table, "table1", "Fig. 11 - ROCKET-based vs manual feature extraction "
              "(one-handed, no boost)");
  std::printf("\n(paper: manual accuracy ~62%% vs P2Auth ~98%%; P2Auth "
              "better on both axes)\n");
  report.write();
  return 0;
}
