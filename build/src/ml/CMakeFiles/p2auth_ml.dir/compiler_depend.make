# Empty compiler generated dependencies file for p2auth_ml.
# This may be replaced when dependencies are built.
