file(REMOVE_RECURSE
  "libp2auth_ml.a"
)
