file(REMOVE_RECURSE
  "CMakeFiles/p2auth_ml.dir/knn.cpp.o"
  "CMakeFiles/p2auth_ml.dir/knn.cpp.o.d"
  "CMakeFiles/p2auth_ml.dir/manual_baseline.cpp.o"
  "CMakeFiles/p2auth_ml.dir/manual_baseline.cpp.o.d"
  "CMakeFiles/p2auth_ml.dir/minirocket.cpp.o"
  "CMakeFiles/p2auth_ml.dir/minirocket.cpp.o.d"
  "CMakeFiles/p2auth_ml.dir/nn.cpp.o"
  "CMakeFiles/p2auth_ml.dir/nn.cpp.o.d"
  "libp2auth_ml.a"
  "libp2auth_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2auth_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
