
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/knn.cpp" "src/ml/CMakeFiles/p2auth_ml.dir/knn.cpp.o" "gcc" "src/ml/CMakeFiles/p2auth_ml.dir/knn.cpp.o.d"
  "/root/repo/src/ml/manual_baseline.cpp" "src/ml/CMakeFiles/p2auth_ml.dir/manual_baseline.cpp.o" "gcc" "src/ml/CMakeFiles/p2auth_ml.dir/manual_baseline.cpp.o.d"
  "/root/repo/src/ml/minirocket.cpp" "src/ml/CMakeFiles/p2auth_ml.dir/minirocket.cpp.o" "gcc" "src/ml/CMakeFiles/p2auth_ml.dir/minirocket.cpp.o.d"
  "/root/repo/src/ml/nn.cpp" "src/ml/CMakeFiles/p2auth_ml.dir/nn.cpp.o" "gcc" "src/ml/CMakeFiles/p2auth_ml.dir/nn.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/p2auth_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/signal/CMakeFiles/p2auth_signal.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/p2auth_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
