# Empty dependencies file for p2auth_signal.
# This may be replaced when dependencies are built.
