file(REMOVE_RECURSE
  "CMakeFiles/p2auth_signal.dir/detrend.cpp.o"
  "CMakeFiles/p2auth_signal.dir/detrend.cpp.o.d"
  "CMakeFiles/p2auth_signal.dir/dtw.cpp.o"
  "CMakeFiles/p2auth_signal.dir/dtw.cpp.o.d"
  "CMakeFiles/p2auth_signal.dir/energy.cpp.o"
  "CMakeFiles/p2auth_signal.dir/energy.cpp.o.d"
  "CMakeFiles/p2auth_signal.dir/fft.cpp.o"
  "CMakeFiles/p2auth_signal.dir/fft.cpp.o.d"
  "CMakeFiles/p2auth_signal.dir/filters.cpp.o"
  "CMakeFiles/p2auth_signal.dir/filters.cpp.o.d"
  "CMakeFiles/p2auth_signal.dir/peaks.cpp.o"
  "CMakeFiles/p2auth_signal.dir/peaks.cpp.o.d"
  "CMakeFiles/p2auth_signal.dir/resample.cpp.o"
  "CMakeFiles/p2auth_signal.dir/resample.cpp.o.d"
  "CMakeFiles/p2auth_signal.dir/stats.cpp.o"
  "CMakeFiles/p2auth_signal.dir/stats.cpp.o.d"
  "libp2auth_signal.a"
  "libp2auth_signal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2auth_signal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
