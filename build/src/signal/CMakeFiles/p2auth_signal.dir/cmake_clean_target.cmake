file(REMOVE_RECURSE
  "libp2auth_signal.a"
)
