
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/signal/detrend.cpp" "src/signal/CMakeFiles/p2auth_signal.dir/detrend.cpp.o" "gcc" "src/signal/CMakeFiles/p2auth_signal.dir/detrend.cpp.o.d"
  "/root/repo/src/signal/dtw.cpp" "src/signal/CMakeFiles/p2auth_signal.dir/dtw.cpp.o" "gcc" "src/signal/CMakeFiles/p2auth_signal.dir/dtw.cpp.o.d"
  "/root/repo/src/signal/energy.cpp" "src/signal/CMakeFiles/p2auth_signal.dir/energy.cpp.o" "gcc" "src/signal/CMakeFiles/p2auth_signal.dir/energy.cpp.o.d"
  "/root/repo/src/signal/fft.cpp" "src/signal/CMakeFiles/p2auth_signal.dir/fft.cpp.o" "gcc" "src/signal/CMakeFiles/p2auth_signal.dir/fft.cpp.o.d"
  "/root/repo/src/signal/filters.cpp" "src/signal/CMakeFiles/p2auth_signal.dir/filters.cpp.o" "gcc" "src/signal/CMakeFiles/p2auth_signal.dir/filters.cpp.o.d"
  "/root/repo/src/signal/peaks.cpp" "src/signal/CMakeFiles/p2auth_signal.dir/peaks.cpp.o" "gcc" "src/signal/CMakeFiles/p2auth_signal.dir/peaks.cpp.o.d"
  "/root/repo/src/signal/resample.cpp" "src/signal/CMakeFiles/p2auth_signal.dir/resample.cpp.o" "gcc" "src/signal/CMakeFiles/p2auth_signal.dir/resample.cpp.o.d"
  "/root/repo/src/signal/stats.cpp" "src/signal/CMakeFiles/p2auth_signal.dir/stats.cpp.o" "gcc" "src/signal/CMakeFiles/p2auth_signal.dir/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/p2auth_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/p2auth_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
