file(REMOVE_RECURSE
  "libp2auth_core.a"
)
