
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/authenticator.cpp" "src/core/CMakeFiles/p2auth_core.dir/authenticator.cpp.o" "gcc" "src/core/CMakeFiles/p2auth_core.dir/authenticator.cpp.o.d"
  "/root/repo/src/core/enrollment.cpp" "src/core/CMakeFiles/p2auth_core.dir/enrollment.cpp.o" "gcc" "src/core/CMakeFiles/p2auth_core.dir/enrollment.cpp.o.d"
  "/root/repo/src/core/evaluation.cpp" "src/core/CMakeFiles/p2auth_core.dir/evaluation.cpp.o" "gcc" "src/core/CMakeFiles/p2auth_core.dir/evaluation.cpp.o.d"
  "/root/repo/src/core/metrics.cpp" "src/core/CMakeFiles/p2auth_core.dir/metrics.cpp.o" "gcc" "src/core/CMakeFiles/p2auth_core.dir/metrics.cpp.o.d"
  "/root/repo/src/core/preprocess.cpp" "src/core/CMakeFiles/p2auth_core.dir/preprocess.cpp.o" "gcc" "src/core/CMakeFiles/p2auth_core.dir/preprocess.cpp.o.d"
  "/root/repo/src/core/registry.cpp" "src/core/CMakeFiles/p2auth_core.dir/registry.cpp.o" "gcc" "src/core/CMakeFiles/p2auth_core.dir/registry.cpp.o.d"
  "/root/repo/src/core/roc.cpp" "src/core/CMakeFiles/p2auth_core.dir/roc.cpp.o" "gcc" "src/core/CMakeFiles/p2auth_core.dir/roc.cpp.o.d"
  "/root/repo/src/core/segmentation.cpp" "src/core/CMakeFiles/p2auth_core.dir/segmentation.cpp.o" "gcc" "src/core/CMakeFiles/p2auth_core.dir/segmentation.cpp.o.d"
  "/root/repo/src/core/serialization.cpp" "src/core/CMakeFiles/p2auth_core.dir/serialization.cpp.o" "gcc" "src/core/CMakeFiles/p2auth_core.dir/serialization.cpp.o.d"
  "/root/repo/src/core/streaming.cpp" "src/core/CMakeFiles/p2auth_core.dir/streaming.cpp.o" "gcc" "src/core/CMakeFiles/p2auth_core.dir/streaming.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ml/CMakeFiles/p2auth_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/ppg/CMakeFiles/p2auth_ppg.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/p2auth_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/signal/CMakeFiles/p2auth_signal.dir/DependInfo.cmake"
  "/root/repo/build/src/keystroke/CMakeFiles/p2auth_keystroke.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/p2auth_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/p2auth_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
