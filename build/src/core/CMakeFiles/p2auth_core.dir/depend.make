# Empty dependencies file for p2auth_core.
# This may be replaced when dependencies are built.
