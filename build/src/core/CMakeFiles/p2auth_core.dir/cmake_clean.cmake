file(REMOVE_RECURSE
  "CMakeFiles/p2auth_core.dir/authenticator.cpp.o"
  "CMakeFiles/p2auth_core.dir/authenticator.cpp.o.d"
  "CMakeFiles/p2auth_core.dir/enrollment.cpp.o"
  "CMakeFiles/p2auth_core.dir/enrollment.cpp.o.d"
  "CMakeFiles/p2auth_core.dir/evaluation.cpp.o"
  "CMakeFiles/p2auth_core.dir/evaluation.cpp.o.d"
  "CMakeFiles/p2auth_core.dir/metrics.cpp.o"
  "CMakeFiles/p2auth_core.dir/metrics.cpp.o.d"
  "CMakeFiles/p2auth_core.dir/preprocess.cpp.o"
  "CMakeFiles/p2auth_core.dir/preprocess.cpp.o.d"
  "CMakeFiles/p2auth_core.dir/registry.cpp.o"
  "CMakeFiles/p2auth_core.dir/registry.cpp.o.d"
  "CMakeFiles/p2auth_core.dir/roc.cpp.o"
  "CMakeFiles/p2auth_core.dir/roc.cpp.o.d"
  "CMakeFiles/p2auth_core.dir/segmentation.cpp.o"
  "CMakeFiles/p2auth_core.dir/segmentation.cpp.o.d"
  "CMakeFiles/p2auth_core.dir/serialization.cpp.o"
  "CMakeFiles/p2auth_core.dir/serialization.cpp.o.d"
  "CMakeFiles/p2auth_core.dir/streaming.cpp.o"
  "CMakeFiles/p2auth_core.dir/streaming.cpp.o.d"
  "libp2auth_core.a"
  "libp2auth_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2auth_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
