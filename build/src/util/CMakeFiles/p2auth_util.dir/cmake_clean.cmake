file(REMOVE_RECURSE
  "CMakeFiles/p2auth_util.dir/csv.cpp.o"
  "CMakeFiles/p2auth_util.dir/csv.cpp.o.d"
  "CMakeFiles/p2auth_util.dir/resource.cpp.o"
  "CMakeFiles/p2auth_util.dir/resource.cpp.o.d"
  "CMakeFiles/p2auth_util.dir/rng.cpp.o"
  "CMakeFiles/p2auth_util.dir/rng.cpp.o.d"
  "CMakeFiles/p2auth_util.dir/serialize.cpp.o"
  "CMakeFiles/p2auth_util.dir/serialize.cpp.o.d"
  "CMakeFiles/p2auth_util.dir/stopwatch.cpp.o"
  "CMakeFiles/p2auth_util.dir/stopwatch.cpp.o.d"
  "CMakeFiles/p2auth_util.dir/table.cpp.o"
  "CMakeFiles/p2auth_util.dir/table.cpp.o.d"
  "libp2auth_util.a"
  "libp2auth_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2auth_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
