file(REMOVE_RECURSE
  "libp2auth_util.a"
)
