# Empty dependencies file for p2auth_util.
# This may be replaced when dependencies are built.
