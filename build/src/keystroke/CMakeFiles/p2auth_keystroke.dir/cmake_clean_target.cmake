file(REMOVE_RECURSE
  "libp2auth_keystroke.a"
)
