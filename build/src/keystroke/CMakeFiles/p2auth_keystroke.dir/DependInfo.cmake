
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/keystroke/events.cpp" "src/keystroke/CMakeFiles/p2auth_keystroke.dir/events.cpp.o" "gcc" "src/keystroke/CMakeFiles/p2auth_keystroke.dir/events.cpp.o.d"
  "/root/repo/src/keystroke/pinpad.cpp" "src/keystroke/CMakeFiles/p2auth_keystroke.dir/pinpad.cpp.o" "gcc" "src/keystroke/CMakeFiles/p2auth_keystroke.dir/pinpad.cpp.o.d"
  "/root/repo/src/keystroke/timing.cpp" "src/keystroke/CMakeFiles/p2auth_keystroke.dir/timing.cpp.o" "gcc" "src/keystroke/CMakeFiles/p2auth_keystroke.dir/timing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/p2auth_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
