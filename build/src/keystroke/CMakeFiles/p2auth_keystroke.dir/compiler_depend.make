# Empty compiler generated dependencies file for p2auth_keystroke.
# This may be replaced when dependencies are built.
