file(REMOVE_RECURSE
  "CMakeFiles/p2auth_keystroke.dir/events.cpp.o"
  "CMakeFiles/p2auth_keystroke.dir/events.cpp.o.d"
  "CMakeFiles/p2auth_keystroke.dir/pinpad.cpp.o"
  "CMakeFiles/p2auth_keystroke.dir/pinpad.cpp.o.d"
  "CMakeFiles/p2auth_keystroke.dir/timing.cpp.o"
  "CMakeFiles/p2auth_keystroke.dir/timing.cpp.o.d"
  "libp2auth_keystroke.a"
  "libp2auth_keystroke.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2auth_keystroke.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
