# Empty dependencies file for p2auth_sim.
# This may be replaced when dependencies are built.
