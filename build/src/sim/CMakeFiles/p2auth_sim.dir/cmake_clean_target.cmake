file(REMOVE_RECURSE
  "libp2auth_sim.a"
)
