
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/attacks.cpp" "src/sim/CMakeFiles/p2auth_sim.dir/attacks.cpp.o" "gcc" "src/sim/CMakeFiles/p2auth_sim.dir/attacks.cpp.o.d"
  "/root/repo/src/sim/dataset.cpp" "src/sim/CMakeFiles/p2auth_sim.dir/dataset.cpp.o" "gcc" "src/sim/CMakeFiles/p2auth_sim.dir/dataset.cpp.o.d"
  "/root/repo/src/sim/population.cpp" "src/sim/CMakeFiles/p2auth_sim.dir/population.cpp.o" "gcc" "src/sim/CMakeFiles/p2auth_sim.dir/population.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ppg/CMakeFiles/p2auth_ppg.dir/DependInfo.cmake"
  "/root/repo/build/src/keystroke/CMakeFiles/p2auth_keystroke.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/p2auth_util.dir/DependInfo.cmake"
  "/root/repo/build/src/signal/CMakeFiles/p2auth_signal.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/p2auth_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
