file(REMOVE_RECURSE
  "CMakeFiles/p2auth_sim.dir/attacks.cpp.o"
  "CMakeFiles/p2auth_sim.dir/attacks.cpp.o.d"
  "CMakeFiles/p2auth_sim.dir/dataset.cpp.o"
  "CMakeFiles/p2auth_sim.dir/dataset.cpp.o.d"
  "CMakeFiles/p2auth_sim.dir/population.cpp.o"
  "CMakeFiles/p2auth_sim.dir/population.cpp.o.d"
  "libp2auth_sim.a"
  "libp2auth_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2auth_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
