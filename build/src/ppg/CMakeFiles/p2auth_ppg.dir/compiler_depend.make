# Empty compiler generated dependencies file for p2auth_ppg.
# This may be replaced when dependencies are built.
