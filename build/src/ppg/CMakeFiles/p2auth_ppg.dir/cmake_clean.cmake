file(REMOVE_RECURSE
  "CMakeFiles/p2auth_ppg.dir/accel_model.cpp.o"
  "CMakeFiles/p2auth_ppg.dir/accel_model.cpp.o.d"
  "CMakeFiles/p2auth_ppg.dir/activity.cpp.o"
  "CMakeFiles/p2auth_ppg.dir/activity.cpp.o.d"
  "CMakeFiles/p2auth_ppg.dir/artifact_model.cpp.o"
  "CMakeFiles/p2auth_ppg.dir/artifact_model.cpp.o.d"
  "CMakeFiles/p2auth_ppg.dir/heart_rate.cpp.o"
  "CMakeFiles/p2auth_ppg.dir/heart_rate.cpp.o.d"
  "CMakeFiles/p2auth_ppg.dir/noise_model.cpp.o"
  "CMakeFiles/p2auth_ppg.dir/noise_model.cpp.o.d"
  "CMakeFiles/p2auth_ppg.dir/profile.cpp.o"
  "CMakeFiles/p2auth_ppg.dir/profile.cpp.o.d"
  "CMakeFiles/p2auth_ppg.dir/pulse_model.cpp.o"
  "CMakeFiles/p2auth_ppg.dir/pulse_model.cpp.o.d"
  "CMakeFiles/p2auth_ppg.dir/sensor.cpp.o"
  "CMakeFiles/p2auth_ppg.dir/sensor.cpp.o.d"
  "CMakeFiles/p2auth_ppg.dir/simulator.cpp.o"
  "CMakeFiles/p2auth_ppg.dir/simulator.cpp.o.d"
  "libp2auth_ppg.a"
  "libp2auth_ppg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2auth_ppg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
