file(REMOVE_RECURSE
  "libp2auth_ppg.a"
)
