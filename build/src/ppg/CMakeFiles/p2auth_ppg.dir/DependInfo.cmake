
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ppg/accel_model.cpp" "src/ppg/CMakeFiles/p2auth_ppg.dir/accel_model.cpp.o" "gcc" "src/ppg/CMakeFiles/p2auth_ppg.dir/accel_model.cpp.o.d"
  "/root/repo/src/ppg/activity.cpp" "src/ppg/CMakeFiles/p2auth_ppg.dir/activity.cpp.o" "gcc" "src/ppg/CMakeFiles/p2auth_ppg.dir/activity.cpp.o.d"
  "/root/repo/src/ppg/artifact_model.cpp" "src/ppg/CMakeFiles/p2auth_ppg.dir/artifact_model.cpp.o" "gcc" "src/ppg/CMakeFiles/p2auth_ppg.dir/artifact_model.cpp.o.d"
  "/root/repo/src/ppg/heart_rate.cpp" "src/ppg/CMakeFiles/p2auth_ppg.dir/heart_rate.cpp.o" "gcc" "src/ppg/CMakeFiles/p2auth_ppg.dir/heart_rate.cpp.o.d"
  "/root/repo/src/ppg/noise_model.cpp" "src/ppg/CMakeFiles/p2auth_ppg.dir/noise_model.cpp.o" "gcc" "src/ppg/CMakeFiles/p2auth_ppg.dir/noise_model.cpp.o.d"
  "/root/repo/src/ppg/profile.cpp" "src/ppg/CMakeFiles/p2auth_ppg.dir/profile.cpp.o" "gcc" "src/ppg/CMakeFiles/p2auth_ppg.dir/profile.cpp.o.d"
  "/root/repo/src/ppg/pulse_model.cpp" "src/ppg/CMakeFiles/p2auth_ppg.dir/pulse_model.cpp.o" "gcc" "src/ppg/CMakeFiles/p2auth_ppg.dir/pulse_model.cpp.o.d"
  "/root/repo/src/ppg/sensor.cpp" "src/ppg/CMakeFiles/p2auth_ppg.dir/sensor.cpp.o" "gcc" "src/ppg/CMakeFiles/p2auth_ppg.dir/sensor.cpp.o.d"
  "/root/repo/src/ppg/simulator.cpp" "src/ppg/CMakeFiles/p2auth_ppg.dir/simulator.cpp.o" "gcc" "src/ppg/CMakeFiles/p2auth_ppg.dir/simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/keystroke/CMakeFiles/p2auth_keystroke.dir/DependInfo.cmake"
  "/root/repo/build/src/signal/CMakeFiles/p2auth_signal.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/p2auth_util.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/p2auth_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
