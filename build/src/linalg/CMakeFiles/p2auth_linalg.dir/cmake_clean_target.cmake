file(REMOVE_RECURSE
  "libp2auth_linalg.a"
)
