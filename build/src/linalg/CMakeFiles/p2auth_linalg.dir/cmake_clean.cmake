file(REMOVE_RECURSE
  "CMakeFiles/p2auth_linalg.dir/banded.cpp.o"
  "CMakeFiles/p2auth_linalg.dir/banded.cpp.o.d"
  "CMakeFiles/p2auth_linalg.dir/cholesky.cpp.o"
  "CMakeFiles/p2auth_linalg.dir/cholesky.cpp.o.d"
  "CMakeFiles/p2auth_linalg.dir/eigen.cpp.o"
  "CMakeFiles/p2auth_linalg.dir/eigen.cpp.o.d"
  "CMakeFiles/p2auth_linalg.dir/matrix.cpp.o"
  "CMakeFiles/p2auth_linalg.dir/matrix.cpp.o.d"
  "CMakeFiles/p2auth_linalg.dir/ridge.cpp.o"
  "CMakeFiles/p2auth_linalg.dir/ridge.cpp.o.d"
  "libp2auth_linalg.a"
  "libp2auth_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2auth_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
