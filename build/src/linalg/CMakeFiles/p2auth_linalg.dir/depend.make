# Empty dependencies file for p2auth_linalg.
# This may be replaced when dependencies are built.
