file(REMOVE_RECURSE
  "CMakeFiles/test_sensor_sim.dir/test_sensor_sim.cpp.o"
  "CMakeFiles/test_sensor_sim.dir/test_sensor_sim.cpp.o.d"
  "test_sensor_sim"
  "test_sensor_sim.pdb"
  "test_sensor_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sensor_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
