# Empty dependencies file for test_sensor_sim.
# This may be replaced when dependencies are built.
