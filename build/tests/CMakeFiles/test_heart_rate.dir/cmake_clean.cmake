file(REMOVE_RECURSE
  "CMakeFiles/test_heart_rate.dir/test_heart_rate.cpp.o"
  "CMakeFiles/test_heart_rate.dir/test_heart_rate.cpp.o.d"
  "test_heart_rate"
  "test_heart_rate.pdb"
  "test_heart_rate[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_heart_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
