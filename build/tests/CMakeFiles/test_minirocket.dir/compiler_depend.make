# Empty compiler generated dependencies file for test_minirocket.
# This may be replaced when dependencies are built.
