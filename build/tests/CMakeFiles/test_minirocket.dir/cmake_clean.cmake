file(REMOVE_RECURSE
  "CMakeFiles/test_minirocket.dir/test_minirocket.cpp.o"
  "CMakeFiles/test_minirocket.dir/test_minirocket.cpp.o.d"
  "test_minirocket"
  "test_minirocket.pdb"
  "test_minirocket[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_minirocket.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
