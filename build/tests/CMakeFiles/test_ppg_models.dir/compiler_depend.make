# Empty compiler generated dependencies file for test_ppg_models.
# This may be replaced when dependencies are built.
