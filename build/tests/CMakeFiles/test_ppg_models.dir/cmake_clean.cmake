file(REMOVE_RECURSE
  "CMakeFiles/test_ppg_models.dir/test_ppg_models.cpp.o"
  "CMakeFiles/test_ppg_models.dir/test_ppg_models.cpp.o.d"
  "test_ppg_models"
  "test_ppg_models.pdb"
  "test_ppg_models[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ppg_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
