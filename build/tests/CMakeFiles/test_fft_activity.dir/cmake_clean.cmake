file(REMOVE_RECURSE
  "CMakeFiles/test_fft_activity.dir/test_fft_activity.cpp.o"
  "CMakeFiles/test_fft_activity.dir/test_fft_activity.cpp.o.d"
  "test_fft_activity"
  "test_fft_activity.pdb"
  "test_fft_activity[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fft_activity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
