# Empty compiler generated dependencies file for test_fft_activity.
# This may be replaced when dependencies are built.
