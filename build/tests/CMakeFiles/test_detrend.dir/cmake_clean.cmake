file(REMOVE_RECURSE
  "CMakeFiles/test_detrend.dir/test_detrend.cpp.o"
  "CMakeFiles/test_detrend.dir/test_detrend.cpp.o.d"
  "test_detrend"
  "test_detrend.pdb"
  "test_detrend[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_detrend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
