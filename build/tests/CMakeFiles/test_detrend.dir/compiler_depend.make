# Empty compiler generated dependencies file for test_detrend.
# This may be replaced when dependencies are built.
