# Empty dependencies file for test_pinpad.
# This may be replaced when dependencies are built.
