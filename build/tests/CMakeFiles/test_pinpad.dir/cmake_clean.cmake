file(REMOVE_RECURSE
  "CMakeFiles/test_pinpad.dir/test_pinpad.cpp.o"
  "CMakeFiles/test_pinpad.dir/test_pinpad.cpp.o.d"
  "test_pinpad"
  "test_pinpad.pdb"
  "test_pinpad[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pinpad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
