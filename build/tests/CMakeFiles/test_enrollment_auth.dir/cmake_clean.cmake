file(REMOVE_RECURSE
  "CMakeFiles/test_enrollment_auth.dir/test_enrollment_auth.cpp.o"
  "CMakeFiles/test_enrollment_auth.dir/test_enrollment_auth.cpp.o.d"
  "test_enrollment_auth"
  "test_enrollment_auth.pdb"
  "test_enrollment_auth[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_enrollment_auth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
