# Empty dependencies file for test_enrollment_auth.
# This may be replaced when dependencies are built.
