file(REMOVE_RECURSE
  "CMakeFiles/test_resample.dir/test_resample.cpp.o"
  "CMakeFiles/test_resample.dir/test_resample.cpp.o.d"
  "test_resample"
  "test_resample.pdb"
  "test_resample[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_resample.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
