file(REMOVE_RECURSE
  "CMakeFiles/test_manual_baseline.dir/test_manual_baseline.cpp.o"
  "CMakeFiles/test_manual_baseline.dir/test_manual_baseline.cpp.o.d"
  "test_manual_baseline"
  "test_manual_baseline.pdb"
  "test_manual_baseline[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_manual_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
