# Empty compiler generated dependencies file for test_manual_baseline.
# This may be replaced when dependencies are built.
