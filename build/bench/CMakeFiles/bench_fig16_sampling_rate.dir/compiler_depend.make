# Empty compiler generated dependencies file for bench_fig16_sampling_rate.
# This may be replaced when dependencies are built.
