# Empty compiler generated dependencies file for bench_fig13_channels.
# This may be replaced when dependencies are built.
