file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_channels.dir/bench_fig13_channels.cpp.o"
  "CMakeFiles/bench_fig13_channels.dir/bench_fig13_channels.cpp.o.d"
  "bench_fig13_channels"
  "bench_fig13_channels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_channels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
