# Empty compiler generated dependencies file for bench_fig3_keystroke_waveforms.
# This may be replaced when dependencies are built.
