file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_preprocessing.dir/bench_fig5_preprocessing.cpp.o"
  "CMakeFiles/bench_fig5_preprocessing.dir/bench_fig5_preprocessing.cpp.o.d"
  "bench_fig5_preprocessing"
  "bench_fig5_preprocessing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_preprocessing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
