# Empty dependencies file for bench_fig14_thirdparty_size.
# This may be replaced when dependencies are built.
