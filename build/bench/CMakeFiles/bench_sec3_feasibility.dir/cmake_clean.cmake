file(REMOVE_RECURSE
  "CMakeFiles/bench_sec3_feasibility.dir/bench_sec3_feasibility.cpp.o"
  "CMakeFiles/bench_sec3_feasibility.dir/bench_sec3_feasibility.cpp.o.d"
  "bench_sec3_feasibility"
  "bench_sec3_feasibility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec3_feasibility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
