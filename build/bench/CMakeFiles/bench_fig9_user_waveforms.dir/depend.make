# Empty dependencies file for bench_fig9_user_waveforms.
# This may be replaced when dependencies are built.
