file(REMOVE_RECURSE
  "CMakeFiles/bench_identification.dir/bench_identification.cpp.o"
  "CMakeFiles/bench_identification.dir/bench_identification.cpp.o.d"
  "bench_identification"
  "bench_identification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_identification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
