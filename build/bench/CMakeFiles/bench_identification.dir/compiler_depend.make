# Empty compiler generated dependencies file for bench_identification.
# This may be replaced when dependencies are built.
