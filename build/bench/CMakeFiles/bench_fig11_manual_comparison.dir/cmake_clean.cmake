file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_manual_comparison.dir/bench_fig11_manual_comparison.cpp.o"
  "CMakeFiles/bench_fig11_manual_comparison.dir/bench_fig11_manual_comparison.cpp.o.d"
  "bench_fig11_manual_comparison"
  "bench_fig11_manual_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_manual_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
