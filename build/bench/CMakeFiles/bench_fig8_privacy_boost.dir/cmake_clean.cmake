file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_privacy_boost.dir/bench_fig8_privacy_boost.cpp.o"
  "CMakeFiles/bench_fig8_privacy_boost.dir/bench_fig8_privacy_boost.cpp.o.d"
  "bench_fig8_privacy_boost"
  "bench_fig8_privacy_boost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_privacy_boost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
