# Empty compiler generated dependencies file for bench_fig8_privacy_boost.
# This may be replaced when dependencies are built.
