
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table1_overheads.cpp" "bench/CMakeFiles/bench_table1_overheads.dir/bench_table1_overheads.cpp.o" "gcc" "bench/CMakeFiles/bench_table1_overheads.dir/bench_table1_overheads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/p2auth_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/p2auth_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/p2auth_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/ppg/CMakeFiles/p2auth_ppg.dir/DependInfo.cmake"
  "/root/repo/build/src/signal/CMakeFiles/p2auth_signal.dir/DependInfo.cmake"
  "/root/repo/build/src/keystroke/CMakeFiles/p2auth_keystroke.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/p2auth_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/p2auth_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
