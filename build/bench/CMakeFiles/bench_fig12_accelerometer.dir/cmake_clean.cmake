file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_accelerometer.dir/bench_fig12_accelerometer.cpp.o"
  "CMakeFiles/bench_fig12_accelerometer.dir/bench_fig12_accelerometer.cpp.o.d"
  "bench_fig12_accelerometer"
  "bench_fig12_accelerometer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_accelerometer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
