# Empty dependencies file for bench_fig17_rate_x_channels.
# This may be replaced when dependencies are built.
