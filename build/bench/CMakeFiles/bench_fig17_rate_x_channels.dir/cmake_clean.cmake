file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_rate_x_channels.dir/bench_fig17_rate_x_channels.cpp.o"
  "CMakeFiles/bench_fig17_rate_x_channels.dir/bench_fig17_rate_x_channels.cpp.o.d"
  "bench_fig17_rate_x_channels"
  "bench_fig17_rate_x_channels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_rate_x_channels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
