# Empty compiler generated dependencies file for watch_session.
# This may be replaced when dependencies are built.
