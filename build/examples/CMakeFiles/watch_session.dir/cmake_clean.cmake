file(REMOVE_RECURSE
  "CMakeFiles/watch_session.dir/watch_session.cpp.o"
  "CMakeFiles/watch_session.dir/watch_session.cpp.o.d"
  "watch_session"
  "watch_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/watch_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
