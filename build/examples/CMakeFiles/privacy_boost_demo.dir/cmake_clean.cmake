file(REMOVE_RECURSE
  "CMakeFiles/privacy_boost_demo.dir/privacy_boost_demo.cpp.o"
  "CMakeFiles/privacy_boost_demo.dir/privacy_boost_demo.cpp.o.d"
  "privacy_boost_demo"
  "privacy_boost_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/privacy_boost_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
