# Empty compiler generated dependencies file for privacy_boost_demo.
# This may be replaced when dependencies are built.
