file(REMOVE_RECURSE
  "CMakeFiles/no_pin_auth.dir/no_pin_auth.cpp.o"
  "CMakeFiles/no_pin_auth.dir/no_pin_auth.cpp.o.d"
  "no_pin_auth"
  "no_pin_auth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/no_pin_auth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
