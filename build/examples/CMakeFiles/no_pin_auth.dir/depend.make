# Empty dependencies file for no_pin_auth.
# This may be replaced when dependencies are built.
