# Empty compiler generated dependencies file for two_factor_login.
# This may be replaced when dependencies are built.
