file(REMOVE_RECURSE
  "CMakeFiles/two_factor_login.dir/two_factor_login.cpp.o"
  "CMakeFiles/two_factor_login.dir/two_factor_login.cpp.o.d"
  "two_factor_login"
  "two_factor_login.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/two_factor_login.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
