// model_convert — migrates model stores between the legacy text format
// and the binary P2MDL001 format (both directions, users and whole
// registries), and self-checks the round trip.
//
//   model_convert <input> <output>   auto-detects the input format/kind
//                                    and writes the opposite format
//   model_convert --verify <file>    validates a store (text or binary)
//                                    and prints a summary
//   model_convert --self-test        synthetic text->binary->text and
//                                    mmap round trips; exit 0 iff all
//                                    byte-identical (the CI smoke step)
//
// Exit status: 0 on success, 1 on a detected failure, 2 on usage error.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/registry.hpp"
#include "core/serialization.hpp"
#include "io/binary.hpp"
#include "io/format.hpp"
#include "io/mmap_registry.hpp"
#include "util/rng.hpp"
#include "util/serialize.hpp"

namespace {

using p2auth::core::EnrolledUser;
using p2auth::core::UserRegistry;

enum class Format { kText, kBinary };
enum class Kind { kUser, kRegistry };

struct Detected {
  Format format;
  Kind kind;
};

// Sniffs the store format and kind from the first bytes of the file:
// binary files open with the P2MDL001 magic (kind is in the header);
// text files carry their version tag within the first line.
Detected detect(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot open " + path);
  }
  char head[64] = {};
  in.read(head, sizeof(head) - 1);
  const std::string_view view(head, static_cast<std::size_t>(in.gcount()));
  if (view.substr(0, 8) ==
      std::string_view(p2auth::io::kMagic, sizeof(p2auth::io::kMagic))) {
    in.clear();
    in.seekg(0);
    const p2auth::io::FileKind kind = p2auth::io::probe_file_kind(in);
    return {Format::kBinary, kind == p2auth::io::FileKind::kUserRegistry
                                 ? Kind::kRegistry
                                 : Kind::kUser};
  }
  if (view.find("p2auth-enrolled-user.v1") != std::string_view::npos) {
    return {Format::kText, Kind::kUser};
  }
  if (view.find("p2auth-registry.v1") != std::string_view::npos) {
    return {Format::kText, Kind::kRegistry};
  }
  throw std::runtime_error(path + ": not a recognized model store");
}

const char* format_name(Format f) {
  return f == Format::kText ? "text" : "binary(P2MDL001)";
}
const char* kind_name(Kind k) {
  return k == Kind::kUser ? "enrolled-user" : "registry";
}

EnrolledUser load_user(const std::string& path, Format format) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  return format == Format::kText
             ? p2auth::core::load_enrolled_user(in)
             : p2auth::io::load_enrolled_user_binary(in);
}

UserRegistry load_registry(const std::string& path, Format format) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  return format == Format::kText ? UserRegistry::load(in)
                                 : p2auth::io::load_user_registry_binary(in);
}

int convert(const std::string& input, const std::string& output) {
  const Detected d = detect(input);
  const Format out_format =
      d.format == Format::kText ? Format::kBinary : Format::kText;
  if (d.kind == Kind::kUser) {
    const EnrolledUser user = load_user(input, d.format);
    if (out_format == Format::kBinary) {
      p2auth::io::save_enrolled_user_binary_file(user, output);
    } else {
      p2auth::core::save_enrolled_user_file(user, output);
    }
  } else {
    const UserRegistry registry = load_registry(input, d.format);
    if (out_format == Format::kBinary) {
      p2auth::io::save_user_registry_binary_file(registry, output);
    } else {
      std::ofstream out(output, std::ios::binary | std::ios::trunc);
      if (!out) throw std::runtime_error("cannot open " + output);
      registry.save(out);
    }
  }
  std::printf("%s [%s %s] -> %s [%s]\n", input.c_str(),
              format_name(d.format), kind_name(d.kind), output.c_str(),
              format_name(out_format));
  return 0;
}

int verify(const std::string& path) {
  const Detected d = detect(path);
  std::size_t users = 0;
  if (d.kind == Kind::kUser) {
    (void)load_user(path, d.format);
    users = 1;
  } else if (d.format == Format::kBinary) {
    // The mmap path exercises the lazy-CRC plumbing end to end.
    const p2auth::io::MappedRegistry reg =
        p2auth::io::MappedRegistry::open(path);
    reg.verify_all();
    users = reg.size();
  } else {
    users = load_registry(path, d.format).size();
  }
  std::printf("%s: OK [%s %s, %zu user%s]\n", path.c_str(),
              format_name(d.format), kind_name(d.kind), users,
              users == 1 ? "" : "s");
  return 0;
}

// ---- self-test --------------------------------------------------------

// A small deterministic trained model assembled directly from parts (no
// enrollment pipeline, so the self-test runs in milliseconds).
p2auth::core::WaveformModel make_test_model(p2auth::util::Rng& rng,
                                            std::size_t n_channels) {
  std::vector<p2auth::ml::MiniRocket> channels;
  std::size_t total_features = 0;
  for (std::size_t c = 0; c < n_channels; ++c) {
    p2auth::ml::MiniRocketOptions options;
    options.num_features = 168;
    options.max_dilations = 2;
    std::vector<int> dilations = {1, 3};
    const std::size_t biases_per_combo = 1;
    std::vector<double> biases(84 * dilations.size() * biases_per_combo);
    for (double& b : biases) b = rng.normal(0.0, 1.0);
    channels.push_back(p2auth::ml::MiniRocket::from_parts(
        options, /*input_length=*/64, std::move(dilations), biases_per_combo,
        std::move(biases)));
    total_features += channels.back().num_features();
  }
  p2auth::ml::MiniRocketOptions mc_options;
  mc_options.num_features = 168 * n_channels;
  mc_options.max_dilations = 2;
  auto rocket = p2auth::ml::MultiChannelMiniRocket::from_parts(
      mc_options, std::move(channels));
  std::vector<double> weights(total_features);
  for (double& w : weights) w = rng.normal(0.0, 0.1);
  auto ridge = p2auth::linalg::RidgeClassifier::from_parts(
      std::move(weights), rng.normal(0.0, 0.5), 1.0);
  return p2auth::core::WaveformModel::from_parts(
      std::move(rocket), std::move(ridge), rng.normal(0.0, 0.2));
}

EnrolledUser make_test_user(p2auth::util::Rng& rng, std::uint32_t id,
                            const std::string& pin) {
  EnrolledUser user;
  user.pin = p2auth::keystroke::Pin(pin);
  user.privacy_boost = true;
  user.user_id = id;
  user.stats.full_positives = 9;
  user.stats.full_negatives = 30;
  user.stats.segment_positives = 36;
  user.stats.segment_negatives = 120;
  user.stats.key_models_trained = 2;
  user.full_model = make_test_model(rng, 2);
  user.boost_model = make_test_model(rng, 2);
  for (const char digit : pin.substr(0, 2)) {
    user.key_models[static_cast<std::size_t>(digit - '0')] =
        make_test_model(rng, 2);
  }
  return user;
}

std::string text_of_user(const EnrolledUser& user) {
  std::ostringstream os;
  p2auth::core::save_enrolled_user(user, os);
  return os.str();
}

std::string text_of_registry(const UserRegistry& registry) {
  std::ostringstream os;
  registry.save(os);
  return os.str();
}

int fail_self_test(const char* what) {
  std::fprintf(stderr, "self-test FAILED: %s\n", what);
  return 1;
}

int self_test() {
  p2auth::util::Rng rng(20260808);

  // User: text -> binary -> text must be byte-identical.
  const EnrolledUser user = make_test_user(rng, 7, "1628");
  const std::string text1 = text_of_user(user);
  std::stringstream bin;
  p2auth::io::save_enrolled_user_binary(user, bin);
  const EnrolledUser user2 = p2auth::io::load_enrolled_user_binary(bin);
  if (text_of_user(user2) != text1) {
    return fail_self_test("user text->binary->text not byte-identical");
  }

  // Registry: same, via the eager loader and via the mmap path.
  UserRegistry registry;
  registry.add("alice", make_test_user(rng, 1, "1628"));
  registry.add("bob", make_test_user(rng, 2, "0413"));
  registry.add("carol", make_test_user(rng, 3, "77"));
  const std::string reg_text1 = text_of_registry(registry);
  std::stringstream reg_bin;
  p2auth::io::save_user_registry_binary(registry, reg_bin);
  const UserRegistry registry2 =
      p2auth::io::load_user_registry_binary(reg_bin);
  if (text_of_registry(registry2) != reg_text1) {
    return fail_self_test("registry text->binary->text not byte-identical");
  }

  // File overload must be byte-identical to the ostream overload, and
  // MappedRegistry must materialize the same users from the file.
  const std::string path = "model_convert_selftest.p2mdl";
  p2auth::io::save_user_registry_binary_file(registry, path);
  {
    std::ifstream in(path, std::ios::binary);
    std::stringstream file_bytes;
    file_bytes << in.rdbuf();
    if (file_bytes.str() != reg_bin.str()) {
      std::remove(path.c_str());
      return fail_self_test("file writer differs from stream writer");
    }
  }
  int rc = 0;
  try {
    const p2auth::io::MappedRegistry mapped =
        p2auth::io::MappedRegistry::open(path);
    mapped.verify_all();
    if (mapped.size() != registry.size()) {
      rc = 1;
      std::fprintf(stderr, "self-test FAILED: mapped size mismatch\n");
    }
    UserRegistry rebuilt;
    for (const std::string_view name : mapped.names()) {
      rebuilt.add(std::string(name), mapped.materialize(name));
    }
    if (rc == 0 && text_of_registry(rebuilt) != reg_text1) {
      rc = 1;
      std::fprintf(stderr,
                   "self-test FAILED: mmap materialization diverges\n");
    }
  } catch (const std::exception& e) {
    rc = 1;
    std::fprintf(stderr, "self-test FAILED: %s\n", e.what());
  }
  std::remove(path.c_str());
  if (rc == 0) std::printf("self-test OK\n");
  return rc;
}

int usage() {
  std::fprintf(stderr,
               "usage: model_convert <input> <output>\n"
               "       model_convert --verify <file>\n"
               "       model_convert --self-test\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc == 2 && std::strcmp(argv[1], "--self-test") == 0) {
      return self_test();
    }
    if (argc == 3 && std::strcmp(argv[1], "--verify") == 0) {
      return verify(argv[2]);
    }
    if (argc == 3 && argv[1][0] != '-') {
      return convert(argv[1], argv[2]);
    }
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "model_convert: %s\n", e.what());
    return 1;
  }
}
