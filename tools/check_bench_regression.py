#!/usr/bin/env python3
"""CI perf-regression gate for bench JSON reports.

Compares the dimensionless speedup ratios in a fresh bench report (the
``values`` block of a ``p2auth.report.v1`` JSON, e.g.
``BENCH_primitives.json`` from ``bench_primitives --quick``) against a
checked-in baseline.  Only ratios are gated: they survive machine
changes, while absolute microseconds do not.

The baseline file lists which keys are gated::

    {
      "gated_ratios": ["fast_vs_reference_speedup", "batch_speedup"],
      "reported_prefixes": ["backend_"],
      "values": { "fast_vs_reference_speedup": 5.0, ... }
    }

A gated ratio fails when ``current < tolerance * baseline`` — with the
default tolerance of 0.75, a >25% drop in transform throughput relative
to the recorded baseline fails the build.

Keys matching a ``reported_prefixes`` entry are printed for the build
log but never fail the gate: the per-SIMD-backend ratios depend on which
ISA the runner happens to have, so they are tracked without being gated
until CI hardware is pinned.

Usage:
    check_bench_regression.py CURRENT.json BASELINE.json [--tolerance 0.75]

Exit status: 0 when every gated ratio is within tolerance, 1 otherwise
(or when a gated key is missing from either file).
"""

import argparse
import json
import sys


def load_values(path):
    with open(path) as f:
        doc = json.load(f)
    if "values" not in doc:
        raise SystemExit(f"{path}: no 'values' block (not a bench report?)")
    return doc


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", help="fresh bench report JSON")
    parser.add_argument("baseline", help="checked-in baseline JSON")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.75,
        help="minimum allowed current/baseline ratio (default 0.75, "
        "i.e. a >25%% regression fails)",
    )
    args = parser.parse_args()

    current = load_values(args.current)
    baseline = load_values(args.baseline)
    gated = baseline.get("gated_ratios")
    if not gated:
        raise SystemExit(f"{args.baseline}: no 'gated_ratios' list")

    failures = []
    print(f"perf gate: {args.current} vs {args.baseline} "
          f"(tolerance {args.tolerance:g})")
    for key in gated:
        base = baseline["values"].get(key)
        cur = current["values"].get(key)
        if base is None or cur is None:
            failures.append(key)
            print(f"  {key}: MISSING (current={cur}, baseline={base})")
            continue
        floor = args.tolerance * base
        ok = cur >= floor
        status = "ok" if ok else "REGRESSION"
        print(f"  {key}: current {cur:.3f} vs baseline {base:.3f} "
              f"(floor {floor:.3f}) ... {status}")
        if not ok:
            failures.append(key)

    prefixes = baseline.get("reported_prefixes", [])
    informational = [
        key
        for key in sorted(current["values"])
        if any(key.startswith(p) for p in prefixes)
    ]
    if informational:
        print("reported (not gated):")
        for key in informational:
            cur = current["values"][key]
            base = baseline["values"].get(key)
            against = f" (baseline {base:.3f})" if base is not None else ""
            print(f"  {key}: current {cur:.3f}{against}")

    if failures:
        print(f"perf gate FAILED: {', '.join(failures)}", file=sys.stderr)
        return 1
    print("perf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
