// audit_inspect: decode, CRC-verify, filter and summarize decision
// flight-recorder logs (obs/audit binary format).
//
//   audit_inspect <log> [--jsonl] [--summary] [--verify]
//                 [--user <id>] [--rejects] [--reason <slug>] [--limit <n>]
//
//   --jsonl          one JSON object per record on stdout (default)
//   --summary        aggregate view (accept rate, per-reason tallies,
//                    score/latency quantiles)
//   --verify         decode only; exit 0 when the log is clean, 1 when
//                    any frame is corrupt (typed error printed to stderr)
//   --user <id>      keep only records of this user id
//   --rejects        keep only rejected attempts
//   --reason <slug>  keep only records with this reject-reason slug
//                    (e.g. wrong_pin, timeout; see core/types.hpp)
//   --limit <n>      stop after the first n records (after filtering)
//
// Links p2auth_core for the enum slug names; the obs reader itself stays
// core-free and reports raw codes.
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "obs/audit.hpp"

namespace {

using p2auth::obs::AuditCodeNames;
using p2auth::obs::AuditReadResult;
using p2auth::obs::DecisionRecord;

struct Filter {
  std::optional<std::uint32_t> user;
  bool rejects_only = false;
  std::optional<std::string> reason_slug;
  std::optional<std::size_t> limit;
};

AuditCodeNames core_names() {
  AuditCodeNames names;
  names.reason = [](std::uint8_t code) {
    return std::string(p2auth::core::reject_reason_slug_from_code(code));
  };
  names.model_path = [](std::uint8_t code) {
    return std::string(p2auth::core::model_path_slug_from_code(code));
  };
  names.detected_case = [](std::uint8_t code) {
    return std::string(p2auth::core::detected_case_slug_from_code(code));
  };
  return names;
}

std::vector<DecisionRecord> apply_filter(
    const std::vector<DecisionRecord>& records, const Filter& filter) {
  std::vector<DecisionRecord> kept;
  for (const DecisionRecord& r : records) {
    if (filter.user && r.user_id != *filter.user) continue;
    if (filter.rejects_only && r.accepted != 0) continue;
    if (filter.reason_slug &&
        p2auth::core::reject_reason_slug_from_code(r.reason) !=
            *filter.reason_slug) {
      continue;
    }
    kept.push_back(r);
    if (filter.limit && kept.size() >= *filter.limit) break;
  }
  return kept;
}

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " <log> [--jsonl] [--summary] [--verify] [--user <id>]"
               " [--rejects] [--reason <slug>] [--limit <n>]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);

  std::string path;
  bool jsonl = false;
  bool summary = false;
  bool verify = false;
  Filter filter;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "audit_inspect: " << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--jsonl") {
      jsonl = true;
    } else if (arg == "--summary") {
      summary = true;
    } else if (arg == "--verify") {
      verify = true;
    } else if (arg == "--rejects") {
      filter.rejects_only = true;
    } else if (arg == "--user") {
      filter.user = static_cast<std::uint32_t>(std::stoul(next()));
    } else if (arg == "--reason") {
      filter.reason_slug = next();
    } else if (arg == "--limit") {
      filter.limit = static_cast<std::size_t>(std::stoul(next()));
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "audit_inspect: unknown option " << arg << "\n";
      return usage(argv[0]);
    } else if (path.empty()) {
      path = arg;
    } else {
      return usage(argv[0]);
    }
  }
  if (path.empty()) return usage(argv[0]);
  if (!jsonl && !summary && !verify) jsonl = true;

  const AuditReadResult read = p2auth::obs::read_audit_log(path);
  if (!read.ok()) {
    std::cerr << "audit_inspect: " << path << ": "
              << p2auth::obs::to_string(read.error) << " at byte offset "
              << read.error_offset << " (" << read.records.size()
              << " records decoded before the error)\n";
  }
  if (verify && !jsonl && !summary) {
    if (read.ok()) {
      std::cout << path << ": OK, " << read.records.size() << " records\n";
    }
    return read.ok() ? 0 : 1;
  }

  const AuditCodeNames names = core_names();
  const std::vector<DecisionRecord> kept =
      apply_filter(read.records, filter);

  if (jsonl) {
    p2auth::obs::write_audit_jsonl(std::cout, kept, names);
  }
  if (summary) {
    p2auth::obs::summarize_audit(kept, names).dump(std::cout, 2);
    std::cout << "\n";
  }
  return read.ok() ? 0 : 1;
}
